//===- jit/CodeSizeModel.h - RISC instruction-count code size --*- C++ -*-===//
///
/// \file
/// A compiled-code size model standing in for the paper's SPARC code
/// generator. Section 1 gives the barrier budget: the inline portion of an
/// SATB barrier costs "between 9 and 12 RISC instructions", while a
/// card-marking barrier "can cost as few as two extra instructions per
/// pointer write". Figure 3 measures the 2-6% compiled-code size reduction
/// from eliding barriers; this model regenerates that figure.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_JIT_CODESIZEMODEL_H
#define SATB_JIT_CODESIZEMODEL_H

#include "bytecode/Program.h"

namespace satb {

struct CodeSizeModel {
  /// Inline SATB barrier sequence: check marking-in-progress (2), load the
  /// pre-value and null-test it (3), fill the log-buffer entry and check
  /// for overflow on the slow path stub (4+). We charge the middle of the
  /// paper's 9-12 range.
  static constexpr uint32_t SatbBarrierCost = 11;
  /// Card-marking barrier: shift + store byte.
  static constexpr uint32_t CardBarrierCost = 2;
  /// Generational remembered-set barrier: young-test the base (2), null +
  /// young-test the stored value (2), shift + store byte on the slow edge
  /// (2). Charged per store site in BarrierMode::Generational on top of
  /// any kept marking barrier; removed by the young-target proof.
  static constexpr uint32_t GenRemSetCost = 6;

  /// \returns the modeled machine-instruction count for one bytecode,
  /// excluding any write barrier.
  static uint32_t instrCost(const Instruction &I);

  /// \returns the modeled size of a whole body given per-site barrier
  /// placement. \p BarrierCost is added for each instruction index in
  /// \p BarrierKept.
  static uint32_t bodyCost(const std::vector<Instruction> &Code,
                           const std::vector<bool> &BarrierKept,
                           uint32_t BarrierCost);
};

} // namespace satb

#endif // SATB_JIT_CODESIZEMODEL_H
