//===- jit/Compiler.cpp ---------------------------------------------------===//

#include "jit/Compiler.h"

#include "analysis/Rearrange.h"

#include "support/Stopwatch.h"
#include "support/ThreadPool.h"
#include "verifier/Verifier.h"

#include <cstdio>
#include <cstdlib>

using namespace satb;

CompiledMethod satb::compileMethod(const Program &P, MethodId Id,
                                   const CompilerOptions &Opts) {
  Stopwatch Timer;
  CompiledMethod CM;
  CM.Id = Id;
  CM.Body = inlineMethod(P, P.method(Id), Opts.Inline, &CM.Inlining, Id);

  if (Opts.EnableArrayRearrange) {
    RearrangeResult RR = recognizeMoveDownLoops(CM.Body);
    CM.Body = std::move(RR.Transformed);
    CM.RearrangeStores = std::move(RR.ProtocolStores);
    CM.RearrangeLoops = RR.LoopsTransformed;
  }

  VerifyResult VR = verifyMethod(P, CM.Body);
  if (!VR.Ok) {
    // The analyses are only sound on verified input; an unverifiable body
    // here is a builder or inliner bug, not a user error.
    std::fprintf(stderr, "satb-elide: post-inline verification failed: %s\n",
                 VR.Error.c_str());
    std::abort();
  }

  CM.Analysis = analyzeBarriers(P, CM.Body, Opts.Analysis);

  const bool NoBarriers = Opts.Barrier == BarrierMode::None;
  CM.BarrierKept.assign(CM.Body.Instructions.size(), false);
  std::vector<bool> AllKept(CM.Body.Instructions.size(), false);
  for (size_t I = 0, E = CM.Body.Instructions.size(); I != E; ++I) {
    const BarrierDecision &D = CM.Analysis.Decisions[I];
    if (!D.IsBarrierSite)
      continue;
    AllKept[I] = !NoBarriers;
    CM.BarrierKept[I] =
        !NoBarriers && !(Opts.ApplyElision && D.Elide);
  }

  uint32_t BarrierCost = 0;
  switch (Opts.Barrier) {
  case BarrierMode::None:
    break;
  case BarrierMode::Satb:
    BarrierCost = CodeSizeModel::SatbBarrierCost;
    break;
  case BarrierMode::SatbAlwaysLog:
    BarrierCost = CodeSizeModel::SatbBarrierCost - 2; // no marking check
    break;
  case BarrierMode::CardMarking:
    BarrierCost = CodeSizeModel::CardBarrierCost;
    break;
  case BarrierMode::Generational:
    BarrierCost = CodeSizeModel::SatbBarrierCost; // marking component
    break;
  }
  CM.CodeSize =
      CodeSizeModel::bodyCost(CM.Body.Instructions, CM.BarrierKept,
                              BarrierCost);
  CM.CodeSizeNoElision =
      CodeSizeModel::bodyCost(CM.Body.Instructions, AllKept, BarrierCost);
  if (Opts.Barrier == BarrierMode::Generational) {
    // The remembered-set component prices separately: every heap store
    // site carries it (statics are roots, not remembered-set clients)
    // unless the young-target proof removes it.
    for (size_t I = 0, E = CM.Body.Instructions.size(); I != E; ++I) {
      const BarrierDecision &D = CM.Analysis.Decisions[I];
      if (!D.IsBarrierSite ||
          CM.Body.Instructions[I].Op == Opcode::PutStatic)
        continue;
      CM.CodeSizeNoElision += CodeSizeModel::GenRemSetCost;
      if (!(Opts.ApplyElision && D.TargetYoung))
        CM.CodeSize += CodeSizeModel::GenRemSetCost;
    }
  }
  if (CM.RearrangeStores.empty())
    CM.RearrangeStores.assign(CM.Body.Instructions.size(), false);
  CM.CompileTimeUs = Timer.elapsedUs();
  return CM;
}

CompiledProgram satb::compileProgram(const Program &P,
                                     const CompilerOptions &Opts) {
  CompiledProgram CP;
  CP.Options = Opts;
  const size_t NumMethods = P.numMethods();
  CP.Methods.resize(NumMethods);
  // compileMethod is a pure function of (P, Id, Opts), so methods compile
  // on any number of threads; each writes only its own pre-sized slot,
  // which keeps CP.Methods identical to the serial compile.
  ThreadPool Pool(NumMethods <= 1 ? 1 : Opts.CompileThreads);
  Pool.parallelFor(NumMethods, [&](size_t Id) {
    CP.Methods[Id] = compileMethod(P, static_cast<MethodId>(Id), Opts);
  });
  return CP;
}

uint32_t CompiledProgram::totalCodeSize() const {
  uint32_t Total = 0;
  for (const CompiledMethod &M : Methods)
    Total += M.CodeSize;
  return Total;
}

uint32_t CompiledProgram::totalCodeSizeNoElision() const {
  uint32_t Total = 0;
  for (const CompiledMethod &M : Methods)
    Total += M.CodeSizeNoElision;
  return Total;
}

double CompiledProgram::totalCompileTimeUs() const {
  double Total = 0;
  for (const CompiledMethod &M : Methods)
    Total += M.CompileTimeUs;
  return Total;
}

double CompiledProgram::totalAnalysisTimeUs() const {
  double Total = 0;
  for (const CompiledMethod &M : Methods)
    Total += M.Analysis.AnalysisTimeUs;
  return Total;
}

uint32_t CompiledProgram::totalBarrierSites() const {
  uint32_t Total = 0;
  for (const CompiledMethod &M : Methods)
    Total += M.Analysis.NumSites;
  return Total;
}

std::vector<uint32_t> CompiledProgram::instrOffsets() const {
  std::vector<uint32_t> Offsets(Methods.size() + 1, 0);
  for (size_t M = 0; M != Methods.size(); ++M)
    Offsets[M + 1] =
        Offsets[M] +
        static_cast<uint32_t>(Methods[M].Body.Instructions.size());
  return Offsets;
}

uint32_t CompiledProgram::totalElidedSites() const {
  uint32_t Total = 0;
  for (const CompiledMethod &M : Methods)
    Total += M.Analysis.NumElided;
  return Total;
}
