//===- jit/CodeSizeModel.cpp ----------------------------------------------===//

#include "jit/CodeSizeModel.h"

using namespace satb;

uint32_t CodeSizeModel::instrCost(const Instruction &I) {
  switch (I.Op) {
  case Opcode::IConst:
  case Opcode::AConstNull:
  case Opcode::ILoad:
  case Opcode::IStore:
  case Opcode::ALoad:
  case Opcode::AStore:
  case Opcode::Dup:
  case Opcode::Pop:
  case Opcode::Swap:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::INeg:
  case Opcode::IInc:
  case Opcode::Goto:
    return 1;
  case Opcode::IDiv:
  case Opcode::IRem:
    return 3; // zero check + divide
  case Opcode::GetField:
  case Opcode::PutField:
  case Opcode::GetStatic:
  case Opcode::PutStatic:
    return 2; // null check + memory op
  case Opcode::AALoad:
  case Opcode::IALoad:
  case Opcode::AAStore:
  case Opcode::IAStore:
    return 4; // null check + bounds check + address + memory op
  case Opcode::ArrayLength:
    return 2;
  case Opcode::NewInstance:
    return 10; // allocation fast path + zeroing stub
  case Opcode::NewRefArray:
  case Opcode::NewIntArray:
    return 12;
  case Opcode::Invoke:
    return 3; // argument shuffle + call
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfGt:
  case Opcode::IfLe:
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpLe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
  case Opcode::IfACmpEq:
  case Opcode::IfACmpNe:
    return 2; // compare + branch
  case Opcode::Ret:
  case Opcode::IReturn:
  case Opcode::AReturn:
    return 2; // epilogue
  case Opcode::RearrangeEnter:
  case Opcode::RearrangeEnterDyn:
    return 5; // log the dropped element + read the tracing state
  case Opcode::RearrangeExit:
    return 3; // re-read the state + conditional retrace enqueue
  case Opcode::ArrayFill:
  case Opcode::ArrayCopy:
    return 8; // null/kind/range checks + loop setup; the per-slot moves
              // are data movement a compiled memmove amortizes away
  }
  return 1;
}

uint32_t CodeSizeModel::bodyCost(const std::vector<Instruction> &Code,
                                 const std::vector<bool> &BarrierKept,
                                 uint32_t BarrierCost) {
  uint32_t Total = 0;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    Total += instrCost(Code[I]);
    if (I < BarrierKept.size() && BarrierKept[I])
      Total += BarrierCost;
  }
  return Total;
}
