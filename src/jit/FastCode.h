//===- jit/FastCode.h - Pre-decoded threaded instruction stream -*- C++ -*-===//
///
/// \file
/// The fast mutator engine's instruction format. translateProgram lowers
/// each CompiledMethod into a stream of FastInsts in which everything the
/// reference interpreter decides per-execution is decided once, at
/// translation time:
///
///  - field accesses carry their payload slot index and owner class
///    (no FieldDecl / FieldSlot lookups at run time),
///  - every reference-store site is lowered to a *barrier-specialized*
///    opcode baking in the compiler's per-site verdict — an elided store
///    executes zero barrier instructions, a kept store executes exactly
///    its BarrierMode's sequence, with no per-execution decision tree,
///  - each store site carries its flat BarrierStats index
///    (CompiledProgram::instrOffsets()[M] + PC), so counter updates are a
///    single indexed add.
///
/// The translation is 1:1 with the compiled body's instructions, so
/// branch targets, PCs, and step counts are unchanged — the equivalence
/// test relies on this to compare the engines instruction-for-
/// instruction.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_JIT_FASTCODE_H
#define SATB_JIT_FASTCODE_H

#include "jit/Compiler.h"

#include <optional>

namespace satb {

/// The specialized opcode set, as an X-macro so the dispatch label table
/// in FastInterp.cpp can never fall out of sync with the enum.
#define SATB_FAST_BASE_OPS(X)                                                  \
  X(IConst)                                                                    \
  X(AConstNull)                                                                \
  X(Load)                                                                      \
  X(Store)                                                                     \
  X(IInc)                                                                      \
  X(Dup)                                                                       \
  X(Pop)                                                                       \
  X(Swap)                                                                      \
  X(IAdd)                                                                      \
  X(ISub)                                                                      \
  X(IMul)                                                                      \
  X(IDiv)                                                                      \
  X(IRem)                                                                      \
  X(INeg)                                                                      \
  X(GetFieldRef)                                                               \
  X(GetFieldInt)                                                               \
  X(PutFieldInt)                                                               \
  X(PutFieldRef_Elided)                                                        \
  X(PutFieldRef_NoBarrier)                                                     \
  X(PutFieldRef_Satb)                                                          \
  X(PutFieldRef_AlwaysLog)                                                     \
  X(PutFieldRef_Card)                                                          \
  X(GetStaticRef)                                                              \
  X(GetStaticInt)                                                              \
  X(PutStaticInt)                                                              \
  X(PutStaticRef_Elided)                                                       \
  X(PutStaticRef_NoBarrier)                                                    \
  X(PutStaticRef_Satb)                                                         \
  X(PutStaticRef_AlwaysLog)                                                    \
  X(PutStaticRef_Card)                                                         \
  X(NewInstance)                                                               \
  X(NewRefArray)                                                               \
  X(NewIntArray)                                                               \
  X(AALoad)                                                                    \
  X(IALoad)                                                                    \
  X(IAStore)                                                                   \
  X(ArrayLength)                                                               \
  X(AAStore_Elided)                                                            \
  X(AAStore_NoBarrier)                                                         \
  X(AAStore_Satb)                                                              \
  X(AAStore_AlwaysLog)                                                         \
  X(AAStore_Card)                                                              \
  X(AAStore_Rearr_Satb)                                                        \
  X(AAStore_Rearr_AlwaysLog)                                                   \
  X(Invoke)                                                                    \
  X(Goto)                                                                      \
  X(IfEq)                                                                      \
  X(IfNe)                                                                      \
  X(IfLt)                                                                      \
  X(IfGe)                                                                      \
  X(IfGt)                                                                      \
  X(IfLe)                                                                      \
  X(IfICmpEq)                                                                  \
  X(IfICmpNe)                                                                  \
  X(IfICmpLt)                                                                  \
  X(IfICmpGe)                                                                  \
  X(IfICmpGt)                                                                  \
  X(IfICmpLe)                                                                  \
  X(IfNull)                                                                    \
  X(IfNonNull)                                                                 \
  X(IfACmpEq)                                                                  \
  X(IfACmpNe)                                                                  \
  X(Ret)                                                                       \
  X(IReturn)                                                                   \
  X(AReturn)                                                                   \
  X(RearrangeEnter)                                                            \
  X(RearrangeEnterDyn)                                                         \
  X(RearrangeExit)                                                             \
  X(Safepoint)                                                                 \
  X(PutFieldRef_Gen)                                                           \
  X(PutFieldRef_GenPreNull)                                                    \
  X(PutFieldRef_GenYoung)                                                      \
  X(PutFieldRef_GenElided)                                                     \
  X(AAStore_Gen)                                                               \
  X(AAStore_GenPreNull)                                                        \
  X(AAStore_GenYoung)                                                          \
  X(AAStore_GenElided)                                                         \
  X(PutStaticRef_Gen)                                                          \
  X(PutFieldRef_Spec)                                                          \
  X(PutStaticRef_Spec)                                                         \
  X(AAStore_Spec)                                                              \
  X(ArrayFill_Elided)                                                          \
  X(ArrayFill_NoBarrier)                                                       \
  X(ArrayFill_Satb)                                                            \
  X(ArrayFill_AlwaysLog)                                                       \
  X(ArrayFill_Card)                                                            \
  X(ArrayFill_Gen)                                                             \
  X(ArrayFill_GenPreNull)                                                      \
  X(ArrayFill_GenYoung)                                                        \
  X(ArrayFill_GenElided)                                                       \
  X(ArrayFill_Spec)                                                            \
  X(ArrayCopy_Elided)                                                          \
  X(ArrayCopy_NoBarrier)                                                       \
  X(ArrayCopy_Satb)                                                            \
  X(ArrayCopy_AlwaysLog)                                                       \
  X(ArrayCopy_Card)                                                            \
  X(ArrayCopy_Gen)                                                             \
  X(ArrayCopy_GenPreNull)                                                      \
  X(ArrayCopy_GenYoung)                                                        \
  X(ArrayCopy_GenElided)                                                       \
  X(ArrayCopy_Spec)

/// Fused superinstructions (translation-time peephole, DESIGN.md
/// "Superinstructions"). A fused op replaces the *opcode of the first
/// instruction* of a hot adjacent pair; the second slot keeps its
/// original instruction verbatim. The fused handler reads the second
/// half's operands from IP[1], charges both halves' fuel, and — when the
/// quantum expires mid-pair — executes only the first half and suspends
/// on the untouched second slot. Stream length, branch displacements,
/// trap points, and BarrierStats site numbering are therefore identical
/// to the unfused translation; only Op fields differ.
///
/// Naming: <first><second>, e.g. LoadGetFieldRef fuses a local load with
/// the field read it feeds. The pair set is profile-driven: see
/// tools/dispatch_profile.cpp for the dynamic pair counts that justify
/// it, and fusedOp() in FastTranslate.cpp for the selection table.
#define SATB_FAST_FUSED_OPS(X)                                                 \
  X(LoadGetFieldRef)                                                           \
  X(LoadGetFieldInt)                                                           \
  X(LoadPutFieldInt)                                                           \
  X(LoadPutFieldRef_Elided)                                                    \
  X(LoadPutFieldRef_NoBarrier)                                                 \
  X(LoadPutFieldRef_Satb)                                                      \
  X(LoadPutFieldRef_AlwaysLog)                                                 \
  X(LoadPutFieldRef_Card)                                                      \
  X(LoadAALoad)                                                                \
  X(LoadIALoad)                                                                \
  X(LoadIAStore)                                                               \
  X(LoadAAStore_Elided)                                                        \
  X(LoadAAStore_NoBarrier)                                                     \
  X(LoadAAStore_Satb)                                                          \
  X(LoadAAStore_AlwaysLog)                                                     \
  X(LoadAAStore_Card)                                                          \
  X(LoadStore)                                                                 \
  X(LoadIAdd)                                                                  \
  X(LoadISub)                                                                  \
  X(LoadIMul)                                                                  \
  X(LoadIfEq)                                                                  \
  X(LoadIfNe)                                                                  \
  X(LoadIfLt)                                                                  \
  X(LoadIfGe)                                                                  \
  X(LoadIfGt)                                                                  \
  X(LoadIfLe)                                                                  \
  X(LoadIfICmpEq)                                                              \
  X(LoadIfICmpNe)                                                              \
  X(LoadIfICmpLt)                                                              \
  X(LoadIfICmpGe)                                                              \
  X(LoadIfICmpGt)                                                              \
  X(LoadIfICmpLe)                                                              \
  X(LoadIfNull)                                                                \
  X(LoadIfNonNull)                                                             \
  X(IConstIAdd)                                                                \
  X(IConstISub)                                                                \
  X(IConstIMul)                                                                \
  X(IConstIDiv)                                                                \
  X(IConstIRem)                                                                \
  X(IConstIfICmpEq)                                                            \
  X(IConstIfICmpNe)                                                            \
  X(IConstIfICmpLt)                                                            \
  X(IConstIfICmpGe)                                                            \
  X(IConstIfICmpGt)                                                            \
  X(IConstIfICmpLe)                                                            \
  X(IConstAALoad)                                                              \
  X(IConstIALoad)                                                              \
  X(IIncGoto)                                                                  \
  X(LoadLoad)                                                                  \
  X(LoadIConst)                                                                \
  X(StoreLoad)                                                                 \
  X(StoreStore)                                                                \
  X(IConstIConst)                                                              \
  X(PopIConst)                                                                 \
  X(IRemStore)                                                                 \
  X(IMulPop)                                                                   \
  X(IAddIConst)                                                                \
  X(IMulIConst)                                                                \
  X(LoadPutFieldRef_Gen)                                                       \
  X(LoadPutFieldRef_GenPreNull)                                                \
  X(LoadPutFieldRef_GenYoung)                                                  \
  X(LoadPutFieldRef_GenElided)                                                 \
  X(LoadAAStore_Gen)                                                           \
  X(LoadAAStore_GenPreNull)                                                    \
  X(LoadAAStore_GenYoung)                                                      \
  X(LoadAAStore_GenElided)                                                     \
  X(LoadPutFieldRef_Spec)                                                      \
  X(LoadAAStore_Spec)

/// The full dispatch set: base ops first, fused ops appended (isFusedOp
/// relies on the ordering).
#define SATB_FAST_OPS(X)                                                       \
  SATB_FAST_BASE_OPS(X)                                                        \
  SATB_FAST_FUSED_OPS(X)

enum class FastOp : uint16_t {
#define X(name) name,
  SATB_FAST_OPS(X)
#undef X
};

constexpr unsigned kNumFastOps = 0
#define X(name) +1
    SATB_FAST_OPS(X)
#undef X
    ;

/// True for superinstructions (the ops SATB_FAST_FUSED_OPS adds).
inline bool isFusedOp(FastOp Op) {
  return Op >= FastOp::LoadGetFieldRef;
}

/// Opcode name for profile dumps and diagnostics.
const char *fastOpName(FastOp Op);

/// Speculative store sites (the *_Spec opcodes) describe their barrier
/// composition in FastInst::C — unused at every other store site — so one
/// handler covers all guard/static/kept combinations per component. The
/// marking component carries exactly one of {SpecMarkNull,
/// SpecMarkStaticElided, SpecMarkKept}; under BarrierMode::Generational
/// the remembered-set component carries at most one of {SpecRemYoung,
/// SpecRemStaticElided, SpecRemKept}.
enum : uint16_t {
  kSpecMarkNull = 1u << 0,         ///< guard Pre == null, skip marking barrier
  kSpecMarkStaticElided = 1u << 1, ///< Section 3 proof already removed it
  kSpecMarkKept = 1u << 2,         ///< full conservative marking barrier
  kSpecRemYoung = 1u << 3,         ///< guard isYoung(Base), skip remset barrier
  kSpecRemStaticElided = 1u << 4,  ///< TargetYoung proof already removed it
  kSpecRemKept = 1u << 5,          ///< full remembered-set barrier
  kSpecAlwaysLog = 1u << 6,        ///< marking flavor is SatbAlwaysLog
};

/// The fusion selection table: the superinstruction for an adjacent
/// (First, Second) pair, or std::nullopt if the pair is not fused.
std::optional<FastOp> fusedOp(FastOp First, FastOp Second);

/// One pre-decoded instruction, 16 bytes. Operand meanings:
///  - Load/Store/IInc: A = local index (IInc: B = increment)
///  - field ops: A = payload slot index, B = owner ClassId
///  - static ops: A = StaticFieldId
///  - NewInstance: A = ClassId
///  - Invoke: A = callee MethodId, C = callee arg count
///  - branches: A = self-relative displacement (target - branch PC)
///  - Rearrange*: A, B as in Opcode.h
///  - Site: flat BarrierStats index (store sites only)
struct FastInst {
  uint16_t Op = 0;
  uint16_t C = 0;
  int32_t A = 0;
  int32_t B = 0;
  uint32_t Site = 0;
};

static_assert(sizeof(FastInst) == 16, "keep the stream dense");

struct FastMethod {
  std::vector<FastInst> Code;
  uint32_t NumLocals = 0;
  uint32_t NumArgs = 0;
  /// Locals + worst-case operand stack depth (a translation-time dataflow
  /// over the verified body): the frame's slot footprint in the engine's
  /// contiguous slot arena.
  uint32_t FrameSlots = 0;
};

struct FastProgram {
  std::vector<FastMethod> Methods; ///< indexed by MethodId
  /// max over methods of FrameSlots; sizes the engine's slot arena.
  uint32_t MaxFrameSlots = 0;
};

/// Which version of a method a translation produces (DESIGN.md "Tiered
/// execution"). All tiers translate the *same* compiled body with the
/// same Safepoint-poll placement, so their streams have identical
/// lengths, branch displacements, and Site numbering — the property that
/// makes deopt an index-preserving IP transfer.
enum class TranslationTier : uint8_t {
  /// Every barrier kept regardless of the static proof; the profiling
  /// tier. Semantically identical to Static (a conservative barrier at a
  /// proven-pre-null site logs nothing), it just pays the cost the proof
  /// would have removed.
  Baseline,
  /// Today's translation: the Section 2/3 static elision applied.
  Static,
  /// Static plus profile-driven guarded elision at the sites named by
  /// TranslateOptions::Spec; emits the *_Spec opcodes.
  Speculative,
};

/// Translation knobs. The default translation is 1:1 with the compiled
/// body (the equivalence test's invariant); the multi-mutator driver opts
/// into safepoint polls, which insert extra instructions.
struct TranslateOptions {
  /// Insert a Safepoint instruction before every loop header (any target
  /// of a backward branch) and before every Invoke, so a running mutator
  /// reaches a poll in bounded time on every path. Safepoint refunds its
  /// fuel in the dispatch loop, so step counts still count only real
  /// instructions; barrier-site indices are assigned from the *original*
  /// PCs, so BarrierStats stay comparable across both translations.
  bool InsertSafepoints = false;
  /// Run the superinstruction peephole over the emitted stream (see
  /// SATB_FAST_FUSED_OPS). Fusion never crosses a branch target or a
  /// Safepoint poll, never rewrites anything but Op fields, and fused
  /// handlers charge the sum of their parts, so every observable —
  /// steps, traps, stats, suspension points — is bit-identical with the
  /// pass on or off. Defaults to fusionDefault(): on, unless the
  /// SATB_NO_FUSE environment variable is set (the in-tree oracle knob
  /// CI's release matrix and TSan job flip).
  bool Fuse = fusionDefault();
  /// Which tier this translation produces. Static is today's behavior;
  /// Baseline suppresses the static elision (every barrier kept);
  /// Speculative additionally consumes Spec.
  TranslationTier Tier = TranslationTier::Static;
  /// Per-PC speculation requests for the method being translated. Only
  /// read when Tier == Speculative; must outlive the call.
  const SpeculativeFacts *Spec = nullptr;

  static bool fusionDefault();
};

/// Lowers \p CP (compiled from \p P) into the specialized stream. Field
/// layout comes from computeFieldLayout(P) — the same function the Heap
/// uses — so baked slot indices can never disagree with the heap.
FastProgram translateProgram(const Program &P, const CompiledProgram &CP,
                             const TranslateOptions &Opts = {});

/// Translates a single method — the MethodVersionTable's re-translation
/// entry point. Produces exactly the stream translateProgram would have
/// produced for \p M under \p Opts (same length, displacements, and Site
/// numbering for every tier).
FastMethod translateMethod(const Program &P, const CompiledProgram &CP,
                           MethodId M, const TranslateOptions &Opts);

/// The static tier's verdict for the barrier site at \p PC of method
/// \p M, recomputed from the compiled decisions: which of the two
/// barrier components the Static translation *keeps* (and speculation
/// could therefore remove), and whether the site is eligible for
/// speculation at all (rearranged and card-marking sites are not).
/// Returns false for non-barrier-site PCs.
bool siteComponentsKept(const CompiledProgram &CP, MethodId M, uint32_t PC,
                        bool &MarkKept, bool &RemKept, bool &Speculable);

} // namespace satb

#endif // SATB_JIT_FASTCODE_H
