//===- jit/FastCode.h - Pre-decoded threaded instruction stream -*- C++ -*-===//
///
/// \file
/// The fast mutator engine's instruction format. translateProgram lowers
/// each CompiledMethod into a stream of FastInsts in which everything the
/// reference interpreter decides per-execution is decided once, at
/// translation time:
///
///  - field accesses carry their payload slot index and owner class
///    (no FieldDecl / FieldSlot lookups at run time),
///  - every reference-store site is lowered to a *barrier-specialized*
///    opcode baking in the compiler's per-site verdict — an elided store
///    executes zero barrier instructions, a kept store executes exactly
///    its BarrierMode's sequence, with no per-execution decision tree,
///  - each store site carries its flat BarrierStats index
///    (CompiledProgram::instrOffsets()[M] + PC), so counter updates are a
///    single indexed add.
///
/// The translation is 1:1 with the compiled body's instructions, so
/// branch targets, PCs, and step counts are unchanged — the equivalence
/// test relies on this to compare the engines instruction-for-
/// instruction.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_JIT_FASTCODE_H
#define SATB_JIT_FASTCODE_H

#include "jit/Compiler.h"

namespace satb {

/// The specialized opcode set, as an X-macro so the dispatch label table
/// in FastInterp.cpp can never fall out of sync with the enum.
#define SATB_FAST_OPS(X)                                                       \
  X(IConst)                                                                    \
  X(AConstNull)                                                                \
  X(Load)                                                                      \
  X(Store)                                                                     \
  X(IInc)                                                                      \
  X(Dup)                                                                       \
  X(Pop)                                                                       \
  X(Swap)                                                                      \
  X(IAdd)                                                                      \
  X(ISub)                                                                      \
  X(IMul)                                                                      \
  X(IDiv)                                                                      \
  X(IRem)                                                                      \
  X(INeg)                                                                      \
  X(GetFieldRef)                                                               \
  X(GetFieldInt)                                                               \
  X(PutFieldInt)                                                               \
  X(PutFieldRef_Elided)                                                        \
  X(PutFieldRef_NoBarrier)                                                     \
  X(PutFieldRef_Satb)                                                          \
  X(PutFieldRef_AlwaysLog)                                                     \
  X(PutFieldRef_Card)                                                          \
  X(GetStaticRef)                                                              \
  X(GetStaticInt)                                                              \
  X(PutStaticInt)                                                              \
  X(PutStaticRef_Elided)                                                       \
  X(PutStaticRef_NoBarrier)                                                    \
  X(PutStaticRef_Satb)                                                         \
  X(PutStaticRef_AlwaysLog)                                                    \
  X(PutStaticRef_Card)                                                         \
  X(NewInstance)                                                               \
  X(NewRefArray)                                                               \
  X(NewIntArray)                                                               \
  X(AALoad)                                                                    \
  X(IALoad)                                                                    \
  X(IAStore)                                                                   \
  X(ArrayLength)                                                               \
  X(AAStore_Elided)                                                            \
  X(AAStore_NoBarrier)                                                         \
  X(AAStore_Satb)                                                              \
  X(AAStore_AlwaysLog)                                                         \
  X(AAStore_Card)                                                              \
  X(AAStore_Rearr_Satb)                                                        \
  X(AAStore_Rearr_AlwaysLog)                                                   \
  X(Invoke)                                                                    \
  X(Goto)                                                                      \
  X(IfEq)                                                                      \
  X(IfNe)                                                                      \
  X(IfLt)                                                                      \
  X(IfGe)                                                                      \
  X(IfGt)                                                                      \
  X(IfLe)                                                                      \
  X(IfICmpEq)                                                                  \
  X(IfICmpNe)                                                                  \
  X(IfICmpLt)                                                                  \
  X(IfICmpGe)                                                                  \
  X(IfICmpGt)                                                                  \
  X(IfICmpLe)                                                                  \
  X(IfNull)                                                                    \
  X(IfNonNull)                                                                 \
  X(IfACmpEq)                                                                  \
  X(IfACmpNe)                                                                  \
  X(Ret)                                                                       \
  X(IReturn)                                                                   \
  X(AReturn)                                                                   \
  X(RearrangeEnter)                                                            \
  X(RearrangeEnterDyn)                                                         \
  X(RearrangeExit)                                                             \
  X(Safepoint)

enum class FastOp : uint16_t {
#define X(name) name,
  SATB_FAST_OPS(X)
#undef X
};

/// One pre-decoded instruction, 16 bytes. Operand meanings:
///  - Load/Store/IInc: A = local index (IInc: B = increment)
///  - field ops: A = payload slot index, B = owner ClassId
///  - static ops: A = StaticFieldId
///  - NewInstance: A = ClassId
///  - Invoke: A = callee MethodId, C = callee arg count
///  - branches: A = self-relative displacement (target - branch PC)
///  - Rearrange*: A, B as in Opcode.h
///  - Site: flat BarrierStats index (store sites only)
struct FastInst {
  uint16_t Op = 0;
  uint16_t C = 0;
  int32_t A = 0;
  int32_t B = 0;
  uint32_t Site = 0;
};

static_assert(sizeof(FastInst) == 16, "keep the stream dense");

struct FastMethod {
  std::vector<FastInst> Code;
  uint32_t NumLocals = 0;
  uint32_t NumArgs = 0;
  /// Locals + worst-case operand stack depth (a translation-time dataflow
  /// over the verified body): the frame's slot footprint in the engine's
  /// contiguous slot arena.
  uint32_t FrameSlots = 0;
};

struct FastProgram {
  std::vector<FastMethod> Methods; ///< indexed by MethodId
  /// max over methods of FrameSlots; sizes the engine's slot arena.
  uint32_t MaxFrameSlots = 0;
};

/// Translation knobs. The default translation is 1:1 with the compiled
/// body (the equivalence test's invariant); the multi-mutator driver opts
/// into safepoint polls, which insert extra instructions.
struct TranslateOptions {
  /// Insert a Safepoint instruction before every loop header (any target
  /// of a backward branch) and before every Invoke, so a running mutator
  /// reaches a poll in bounded time on every path. Safepoint refunds its
  /// fuel in the dispatch loop, so step counts still count only real
  /// instructions; barrier-site indices are assigned from the *original*
  /// PCs, so BarrierStats stay comparable across both translations.
  bool InsertSafepoints = false;
};

/// Lowers \p CP (compiled from \p P) into the specialized stream. Field
/// layout comes from computeFieldLayout(P) — the same function the Heap
/// uses — so baked slot indices can never disagree with the heap.
FastProgram translateProgram(const Program &P, const CompiledProgram &CP,
                             const TranslateOptions &Opts = {});

} // namespace satb

#endif // SATB_JIT_FASTCODE_H
