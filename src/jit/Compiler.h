//===- jit/Compiler.h - The compilation pipeline ---------------*- C++ -*-===//
///
/// \file
/// The stand-in for the HotSpot client ("C1") JIT the paper modified:
/// inline -> verify -> analyze -> size. Each method of a program is
/// compiled to a CompiledMethod carrying its expanded body, per-site
/// barrier decisions, and a modeled code size; the interpreter executes
/// CompiledMethods and fires barriers per the recorded decisions.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_JIT_COMPILER_H
#define SATB_JIT_COMPILER_H

#include "analysis/BarrierAnalysis.h"
#include "inliner/Inliner.h"
#include "jit/CodeSizeModel.h"

namespace satb {

/// Which write barrier flavor the generated code carries at kept sites.
enum class BarrierMode : uint8_t {
  None,          ///< Table 2 "no-barrier": every barrier removed
  Satb,          ///< standard SATB: check marking, log non-null pre-values
  SatbAlwaysLog, ///< Table 2 "always-log": skip the marking check
  CardMarking,   ///< incremental-update comparison collector
  /// Generational heap: the SATB marking barrier composed with the
  /// old-to-young remembered-set barrier. Pre-null elision removes the
  /// marking component, the young-target proof (BarrierDecision::
  /// TargetYoung) removes the remembered-set component; the two compose
  /// independently into four store variants (see jit/FastCode.h).
  Generational
};

/// Which execution engine runs the compiled program: the reference
/// switch-dispatch Interpreter or the pre-decoded threaded-dispatch
/// FastInterp (see interp/FastInterp.h). Both produce bit-identical
/// results; the fast engine is the measured configuration.
enum class InterpMode : uint8_t { Reference, Fast };

struct CompilerOptions {
  InlineOptions Inline;
  AnalysisConfig Analysis;
  BarrierMode Barrier = BarrierMode::Satb;
  /// Apply analysis verdicts to code generation. Off = analyze (and pay
  /// for it) but keep every barrier; used by instrumentation runs.
  bool ApplyElision = true;
  /// Section 4.3 array-rearrangement protocol: recognize move-down delete
  /// loops and replace their SATB logs with the optimistic tracing-state
  /// protocol (see analysis/Rearrange.h). Single-mutator / lock-
  /// disciplined code only, per the paper's closing caveat.
  bool EnableArrayRearrange = false;
  /// Worker threads for compileProgram. The analysis is intra-procedural,
  /// so methods compile independently; results are written into
  /// index-ordered slots, making the output identical to a serial compile
  /// regardless of scheduling. 0 = hardware concurrency, 1 = serial.
  unsigned CompileThreads = 0;
  /// Which mutator engine executes the compiled program (see InterpMode).
  InterpMode Interp = InterpMode::Reference;
};

struct CompiledMethod {
  MethodId Id = InvalidId;
  Method Body; ///< post-inlining body actually executed
  AnalysisResult Analysis;
  InlineStats Inlining;
  /// Per-instruction: a barrier must be executed at this store. Empty in
  /// BarrierMode::None.
  std::vector<bool> BarrierKept;
  /// Per-instruction: this aastore uses the Section 4.3 rearrangement
  /// protocol (skips the SATB log while its array is in an active
  /// rearrangement). Set only with EnableArrayRearrange.
  std::vector<bool> RearrangeStores;
  uint32_t RearrangeLoops = 0;
  uint32_t CodeSize = 0;
  uint32_t CodeSizeNoElision = 0; ///< same body, every barrier kept
  double CompileTimeUs = 0.0;
};

struct CompiledProgram {
  CompilerOptions Options;
  std::vector<CompiledMethod> Methods; ///< indexed by MethodId

  const CompiledMethod &method(MethodId Id) const {
    assert(Id < Methods.size() && "method id out of range");
    return Methods[Id];
  }

  uint32_t totalCodeSize() const;
  uint32_t totalCodeSizeNoElision() const;
  double totalCompileTimeUs() const;
  double totalAnalysisTimeUs() const;
  uint32_t totalBarrierSites() const;
  uint32_t totalElidedSites() const;

  /// Prefix sums of per-method instruction counts (size numMethods + 1).
  /// Offsets[M] + PC is the program-wide flat index of instruction PC of
  /// method M — the O(1) site-index space shared by BarrierStats and the
  /// fast-interpreter translation.
  std::vector<uint32_t> instrOffsets() const;
};

/// Compiles one method. \p M must be a member of \p P (given by id).
/// Asserts that the expanded body verifies; the analyses assume verified
/// input (Section 2.2).
CompiledMethod compileMethod(const Program &P, MethodId Id,
                             const CompilerOptions &Opts);

/// Compiles every method of \p P.
CompiledProgram compileProgram(const Program &P, const CompilerOptions &Opts);

} // namespace satb

#endif // SATB_JIT_COMPILER_H
