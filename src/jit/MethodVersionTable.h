//===- jit/MethodVersionTable.h - Tiered translation cache -----*- C++ -*-===//
///
/// \file
/// The tiered engine's single dispatch point (DESIGN.md "Tiered
/// execution"). Every method has up to three live translations —
/// Baseline (conservative, profiling), Static (the Section 2/3 proof
/// applied), Speculative (profile-driven guarded elision) — and the fast
/// interpreter resolves *every* activation, including the entry method,
/// through this table. In untiered mode the table degenerates to a flat
/// array of Static streams with zero per-invoke overhead beyond one
/// predicted branch.
///
/// Version lifecycle:
///
///   Baseline --warm--> Static --hot+profile--> Speculative
///                        ^                          |
///                        +---- guard failure -------+  (deopt)
///                        +---- minor-GC epoch ------+  (young-spec only)
///
/// All tiers translate the same compiled body with the same
/// Safepoint-poll placement, so a method's versions have identical
/// stream lengths, branch displacements, and Site numbering. Deopt is
/// therefore an index-preserving IP transfer: NewIP = To.Code.data() +
/// (IP - From.Code.data()), legal at any instruction boundary (fused
/// second slots are verbatim copies, and suspension never stops inside a
/// pair). Retired versions are kept alive until the table dies — a
/// lazily invalidated version may still have live frames, which the
/// dynamic guards keep sound until the next deopt or stop-the-world
/// invalidation transfers them.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_JIT_METHODVERSIONTABLE_H
#define SATB_JIT_METHODVERSIONTABLE_H

// SiteStats only (a POD counter block): the promotion policy reads the
// engine's Site-indexed profile shard. No BarrierStats member function is
// called, so this is a header-only dependency, not a link-layer one.
#include "interp/BarrierStats.h"
#include "jit/FastCode.h"

#include <memory>

namespace satb {

/// Tiering knobs. The env defaults let CI re-run whole suites tiered
/// (SATB_TIERED=1) and force deopt storms (SATB_DEOPT_EVERY=k) without
/// touching test code.
struct TieredOptions {
  /// Master switch; defaults from the SATB_TIERED environment variable.
  bool Enabled = tieredDefault();
  /// Invocations before a Baseline method is re-translated at Static.
  uint32_t WarmInvocations = warmDefault();
  /// Invocations before the profile is consulted for speculation (and
  /// the re-poll interval while no site qualifies).
  uint32_t HotInvocations = hotDefault();
  /// A site speculates only after this many profiled executions.
  uint64_t MinSiteExecs = 16;
  /// Guard-failure deopts after which a method is pinned to Static.
  uint32_t MaxDeopts = 3;
  /// Testing knob: every k-th guard evaluation takes the failure path
  /// (conservative barrier + deopt) even when the guard holds; 0 = off.
  /// Defaults from SATB_DEOPT_EVERY.
  uint32_t ForceDeoptEvery = forceDeoptDefault();

  static bool tieredDefault();
  static uint32_t warmDefault();
  static uint32_t hotDefault();
  static uint32_t forceDeoptDefault();
};

/// Per-table lifecycle counters (per engine, like the BarrierStats
/// shards — merged by the caller if aggregation is wanted).
struct TierCounters {
  uint64_t StaticPromotions = 0;
  uint64_t SpecPromotions = 0;
  uint64_t SpecSites = 0;          ///< guarded sites across all promotions
  uint64_t Deopts = 0;             ///< guard-failure deopts (incl. forced)
  uint64_t ForcedDeopts = 0;       ///< of which SATB_DEOPT_EVERY forced
  uint64_t EpochInvalidations = 0; ///< young-spec retired by a minor GC
};

class MethodVersionTable {
  struct Version {
    TranslationTier Tier = TranslationTier::Static;
    FastMethod FM;
    bool HasYoungSpec = false;
    uint32_t SpecSites = 0;
  };

  struct Entry {
    const FastMethod *Active = nullptr;
    TranslationTier ActiveTier = TranslationTier::Static;
    std::unique_ptr<Version> BaselineV, StaticV, SpecV;
    /// Invalidated speculative versions, kept alive for frames that may
    /// still be executing them (see file comment).
    std::vector<std::unique_ptr<Version>> Retired;
    uint64_t Invocations = 0;
    /// Invocation count at which the lifecycle advances (warm, hot,
    /// re-poll); UINT64_MAX pins the method to its current version.
    uint64_t NextCheck = 0;
    uint32_t DeoptCount = 0;
    bool ActiveYoungSpec = false;
    /// Minor-GC collection count when the active young-spec version was
    /// installed; a newer epoch invalidates it at next dispatch.
    uint64_t SpecEpoch = 0;
  };

public:
  /// Untiered: wrap an existing translation, one immutable Static
  /// version per method. \p FP must outlive the table.
  explicit MethodVersionTable(const FastProgram &FP);

  /// Tiered (or self-owned untiered, when !TOpts.Enabled): translates
  /// every method at Baseline now; Static and Speculative versions are
  /// produced on demand by the promotion policy. \p P and \p CP must
  /// outlive the table.
  MethodVersionTable(const Program &P, const CompiledProgram &CP,
                     const TranslateOptions &TO, const TieredOptions &TOpts);

  bool tiered() const { return Tiered; }
  const TieredOptions &options() const { return Opts; }
  const TierCounters &counters() const { return Counters; }
  uint32_t maxFrameSlots() const { return MaxFrameSlots; }
  size_t numMethods() const { return Entries.size(); }

  /// The version the next activation of \p M executes (also the entry
  /// method's resolution in FastInterp::start).
  const FastMethod &active(MethodId M) const { return *Entries[M].Active; }
  TranslationTier activeTier(MethodId M) const {
    return Entries[M].ActiveTier;
  }
  uint64_t invocations(MethodId M) const { return Entries[M].Invocations; }
  uint32_t deoptCount(MethodId M) const { return Entries[M].DeoptCount; }

  /// THE dispatch point: resolves the callee's current version and
  /// advances the tiered lifecycle — invocation counting, lazy
  /// young-spec epoch invalidation, warm/hot promotion. \p Sites is the
  /// calling engine's flat profile shard; \p Epoch its current minor-GC
  /// collection count (0 when not generational).
  const FastMethod &invoke(MethodId M, const SiteStats *Sites,
                           uint64_t Epoch) {
    Entry &E = Entries[M];
    if (Tiered) {
      if (E.ActiveYoungSpec && Epoch != E.SpecEpoch)
        retireSpec(E, /*GuardFailed=*/false);
      if (++E.Invocations >= E.NextCheck)
        promote(M, Sites, Epoch);
    }
    return *E.Active;
  }

  /// Guard failure in the version executing Frames.back(): retire it,
  /// transfer every frame running it onto the Static version, and update
  /// the re-speculation policy. Called from the dispatch loop with the
  /// failing frame already flushed (FLUSH_FRAME discipline), i.e. at a
  /// Safepoint-compatible point. \p FrameVec elements expose .FM and
  /// .IP, the engine's frame layout.
  template <class FrameVec> void deoptimize(FrameVec &Frames, bool Forced) {
    const FastMethod *From = Frames.back().FM;
    Entry *E = findEntryOwning(From);
    assert(E && E->StaticV && "deopt from a stream the table does not own");
    if (!E || !E->StaticV)
      return;
    ++Counters.Deopts;
    if (Forced)
      ++Counters.ForcedDeopts;
    const FastMethod *To;
    if (E->SpecV && From == &E->SpecV->FM) {
      To = retireSpec(*E, /*GuardFailed=*/true);
    } else {
      // A lazily retired version tripped a guard; its frames transfer
      // now, and the failure still counts against re-speculation.
      ++E->DeoptCount;
      To = &E->StaticV->FM;
    }
    transfer(Frames, From, To);
  }

  /// Stop-the-world invalidation hook (ServeMinorGC): retire every
  /// young-speculating version and transfer any frames still executing
  /// one — including versions a lazy epoch check already retired. The
  /// caller guarantees all mutators are parked with flushed frames.
  template <class FrameVec> void invalidateYoungSpecs(FrameVec &Frames) {
    if (!Tiered)
      return;
    for (Entry &E : Entries) {
      if (E.SpecV && E.SpecV->HasYoungSpec && E.Active == &E.SpecV->FM) {
        const FastMethod *From = &E.SpecV->FM;
        transfer(Frames, From, retireSpec(E, /*GuardFailed=*/false));
      }
      if (E.StaticV)
        for (const std::unique_ptr<Version> &V : E.Retired)
          if (V->HasYoungSpec)
            transfer(Frames, &V->FM, &E.StaticV->FM);
    }
  }

private:
  /// Index-preserving frame transfer between two versions of one method
  /// (identical stream shape; see file comment).
  template <class FrameVec>
  static void transfer(FrameVec &Frames, const FastMethod *From,
                       const FastMethod *To) {
    if (From == To)
      return;
    for (auto &F : Frames)
      if (F.FM == From) {
        F.IP = To->Code.data() + (F.IP - From->Code.data());
        F.FM = To;
      }
  }

  void promote(MethodId M, const SiteStats *Sites, uint64_t Epoch);
  void trySpeculate(MethodId M, const SiteStats *Sites, uint64_t Epoch);
  /// Moves the speculative version to Retired, reactivates Static, and
  /// sets the re-speculation schedule. Returns the new active stream.
  const FastMethod *retireSpec(Entry &E, bool GuardFailed);
  Entry *findEntryOwning(const FastMethod *FM);

  bool Tiered = false;
  TieredOptions Opts;
  TierCounters Counters;
  uint32_t MaxFrameSlots = 0;
  std::vector<Entry> Entries;

  // Tiered-construction state for on-demand re-translation.
  const Program *P = nullptr;
  const CompiledProgram *CP = nullptr;
  TranslateOptions TO;
  std::vector<uint32_t> Offsets; ///< CP->instrOffsets(), cached
  /// Untiered self-owned mode: the Static translation backing Entries.
  FastProgram OwnedStatic;
};

} // namespace satb

#endif // SATB_JIT_METHODVERSIONTABLE_H
