//===- analysis/AbstractValue.h - The analysis value domain ----*- C++ -*-===//
///
/// \file
/// The Value domain of Sections 2.1 and 3.2: Bottom, a set of abstract
/// references (RefVal; the empty set means "definitely null"), or a
/// symbolic integer (IntVal). Conflict covers verifier-rejected mixes and
/// is never loadable in verified code.
///
/// Two optional annotations support the Section 4.3 null-or-same extension:
///   - SrcLocal: the local this value was loaded from (aload), still valid;
///   - null-or-same tags: (base local, field, strength) triples meaning the
///     value may be stored into `local[base].field` without a SATB barrier.
///     Strength Eq means "value == current field contents"; strength Safe
///     means "value == field contents, or the field is currently null".
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_ABSTRACTVALUE_H
#define SATB_ANALYSIS_ABSTRACTVALUE_H

#include "analysis/IntVal.h"
#include "bytecode/Program.h"
#include "support/BitSet.h"

#include <algorithm>
#include <vector>

namespace satb {

/// A null-or-same tag: this value may be stored into
/// `local[BaseLocal].Field` without a barrier. See file comment.
struct NosTag {
  uint32_t BaseLocal;
  FieldId Field;
  bool IsEq; ///< Eq strength (true) vs. Safe strength (false)

  bool operator<(const NosTag &O) const {
    if (BaseLocal != O.BaseLocal)
      return BaseLocal < O.BaseLocal;
    return Field < O.Field; // strength is a property, not part of the key
  }
  bool operator==(const NosTag &O) const {
    return BaseLocal == O.BaseLocal && Field == O.Field && IsEq == O.IsEq;
  }
};

class AbstractValue {
public:
  enum class Kind : uint8_t { Bottom, Refs, Int, Conflict };

  /// Default: Bottom (unreached / uninitialized).
  AbstractValue() = default;

  static AbstractValue bottom() { return AbstractValue(); }
  static AbstractValue conflict() {
    AbstractValue V;
    V.K = Kind::Conflict;
    return V;
  }
  static AbstractValue refs(BitSet Set) {
    AbstractValue V;
    V.K = Kind::Refs;
    V.RefSet = std::move(Set);
    return V;
  }
  /// The definitely-null value: an empty reference set over a universe of
  /// \p NumRefs references.
  static AbstractValue nullRef(uint32_t NumRefs) {
    return refs(BitSet(NumRefs));
  }
  static AbstractValue singleRef(uint32_t NumRefs, uint32_t R) {
    BitSet S(NumRefs);
    S.set(R);
    return refs(std::move(S));
  }
  static AbstractValue intVal(IntVal V) {
    AbstractValue A;
    A.K = Kind::Int;
    A.Int = std::move(V);
    return A;
  }

  Kind kind() const { return K; }
  bool isBottom() const { return K == Kind::Bottom; }
  bool isRefs() const { return K == Kind::Refs; }
  bool isInt() const { return K == Kind::Int; }

  const BitSet &refSet() const {
    assert(isRefs() && "not a reference value");
    return RefSet;
  }
  BitSet &refSet() {
    assert(isRefs() && "not a reference value");
    return RefSet;
  }
  const IntVal &intValue() const {
    assert(isInt() && "not an integer value");
    return Int;
  }

  /// \returns true when this is a reference value proven null (empty set).
  bool isDefinitelyNull() const { return isRefs() && RefSet.empty(); }

  // --- Null-or-same annotations (ignored unless the extension is on). ---

  uint32_t srcLocal() const { return SrcLocal; }
  void setSrcLocal(uint32_t L) { SrcLocal = L; }
  void clearSrcLocal() { SrcLocal = InvalidId; }

  const std::vector<NosTag> &nosTags() const { return Tags; }
  /// Adds \p T, keeping tags sorted and taking the stronger form on
  /// duplicates.
  void addNosTag(NosTag T);
  /// Removes every tag whose field is \p F.
  void dropNosTagsForField(FieldId F);
  /// Removes every tag whose base local is \p Base.
  void dropNosTagsForBase(uint32_t Base);
  void clearNosTags() { Tags.clear(); }
  /// \returns the tag for (Base, F) if present.
  const NosTag *findNosTag(uint32_t Base, FieldId F) const;

  /// Merges (lattice join) \p Incoming into this value. \returns true if
  /// this value changed. Integer merging is delegated to \p MergeInts
  /// (the Figure 1 procedure lives in StateMerger and needs merge-wide
  /// context).
  template <typename IntMergeFn>
  bool mergeFrom(const AbstractValue &Incoming, IntMergeFn MergeInts) {
    if (Incoming.isBottom())
      return false;
    if (isBottom()) {
      *this = Incoming;
      return true;
    }
    bool Changed = false;
    if (K == Kind::Refs && Incoming.K == Kind::Refs) {
      BitSet Before = RefSet;
      RefSet |= Incoming.RefSet;
      Changed = RefSet != Before;
    } else if (K == Kind::Int && Incoming.K == Kind::Int) {
      IntVal Merged = MergeInts(Int, Incoming.Int);
      if (Merged != Int) {
        Int = Merged;
        Changed = true;
      }
    } else if (K != Kind::Conflict) {
      K = Kind::Conflict;
      RefSet = BitSet();
      Int = IntVal();
      Changed = true;
    }
    Changed |= mergeAnnotations(Incoming);
    return Changed;
  }

  bool operator==(const AbstractValue &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Bottom:
    case Kind::Conflict:
      break;
    case Kind::Refs:
      if (RefSet != O.RefSet)
        return false;
      break;
    case Kind::Int:
      if (Int != O.Int)
        return false;
      break;
    }
    return SrcLocal == O.SrcLocal && Tags == O.Tags;
  }
  bool operator!=(const AbstractValue &O) const { return !(*this == O); }

private:
  /// Intersects tags, weakens strengths, and invalidates a disagreeing
  /// SrcLocal. \returns true on change.
  bool mergeAnnotations(const AbstractValue &Incoming);

  Kind K = Kind::Bottom;
  BitSet RefSet;
  IntVal Int;
  uint32_t SrcLocal = InvalidId;
  std::vector<NosTag> Tags; ///< sorted by (BaseLocal, Field)
};

} // namespace satb

#endif // SATB_ANALYSIS_ABSTRACTVALUE_H
