//===- analysis/IntRange.cpp ----------------------------------------------===//

#include "analysis/IntRange.h"

using namespace satb;

IntRange IntRange::contract(const IntVal &Ind) const {
  if (K == Kind::Empty || Ind.isTop())
    return empty();
  // Store at the low end: [i..x] -> [i+1..x] (losing a Full range's upper
  // bound is free: Full ranges only exist right after allocation, where the
  // upper bound is already the last valid index).
  if (hasLo() && Ind == LoBound) {
    IntVal NewLo = LoBound.addConstant(1);
    if (K == Kind::Full) {
      // Keep the explicit upper bound when present; it may still be needed
      // to prove stores near the top of the range.
      return full(NewLo, HiBound);
    }
    return from(NewLo);
  }
  // Store at the high end: [x..i] -> [x..i-1].
  if (hasHi() && Ind == HiBound) {
    IntVal NewHi = HiBound.addConstant(-1);
    if (K == Kind::Full)
      return full(LoBound, NewHi);
    return to(NewHi);
  }
  // "contract loses all information unless i+1 or i-1 is the next element
  // initialized" (Section 3.6).
  return empty();
}

IntRange IntRange::contractRange(const IntVal &Start,
                                 const IntVal &Count) const {
  if (K == Kind::Empty || Start.isTop() || Count.isTop())
    return empty();
  // Bulk store at the low end: [Start..x] -> [Start+Count..x].
  if (hasLo() && Start == LoBound) {
    IntVal NewLo = LoBound + Count;
    if (NewLo.isTop())
      return empty();
    if (K == Kind::Full)
      return full(NewLo, HiBound);
    return from(NewLo);
  }
  // Bulk store at the high end: [x..Start+Count-1] -> [x..Start-1].
  if (hasHi() && Start + Count.addConstant(-1) == HiBound) {
    IntVal NewHi = Start.addConstant(-1);
    if (NewHi.isTop())
      return empty();
    if (K == Kind::Full)
      return full(LoBound, NewHi);
    return to(NewHi);
  }
  return empty();
}

std::string IntRange::str() const {
  switch (K) {
  case Kind::Empty:
    return "[]";
  case Kind::Full:
    return "[" + LoBound.str() + ".." + HiBound.str() + "]";
  case Kind::From:
    return "[" + LoBound.str() + "..]";
  case Kind::To:
    return "[.." + HiBound.str() + "]";
  }
  return "<bad-range>";
}
