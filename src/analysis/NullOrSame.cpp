//===- analysis/NullOrSame.cpp --------------------------------------------===//

#include "analysis/NullOrSame.h"

using namespace satb;

namespace {

template <typename FnT> void forEachValue(AnalysisState &S, FnT Fn) {
  for (AbstractValue &V : S.Locals)
    Fn(V);
  for (AbstractValue &V : S.Stack)
    Fn(V);
}

} // namespace

void satb::nos::applyFacts(const AnalysisState &S, AbstractValue &V) {
  if (!V.isRefs())
    return;
  for (const NosFact &F : S.Facts)
    V.addNosTag(NosTag{F.BaseLocal, F.Field, /*IsEq=*/false});
}

void satb::nos::onLocalReassigned(AnalysisState &S, uint32_t Base) {
  S.dropFactsForBase(Base);
  forEachValue(S, [Base](AbstractValue &V) {
    V.dropNosTagsForBase(Base);
    if (V.srcLocal() == Base)
      V.clearSrcLocal();
  });
}

void satb::nos::onFieldWritten(AnalysisState &S, FieldId F) {
  S.dropFactsForField(F);
  forEachValue(S, [F](AbstractValue &V) { V.dropNosTagsForField(F); });
}

void satb::nos::onCall(AnalysisState &S) {
  S.Facts.clear();
  forEachValue(S, [](AbstractValue &V) { V.clearNosTags(); });
}

void satb::nos::onKnownNull(AnalysisState &S, const AbstractValue &NullSide) {
  for (const NosTag &T : NullSide.nosTags()) {
    // Either strength implies the field is null on this edge: an Eq tag
    // says the value equals the field's contents (which are therefore
    // null); a Safe tag says the value equals the contents *or* the field
    // is already null — null either way.
    S.addFact(T.BaseLocal, T.Field);
    forEachValue(S, [&T](AbstractValue &V) {
      if (V.isRefs())
        V.addNosTag(NosTag{T.BaseLocal, T.Field, /*IsEq=*/false});
    });
  }
}
