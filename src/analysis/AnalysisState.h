//===- analysis/AnalysisState.h - The abstract program state ---*- C++ -*-===//
///
/// \file
/// The program state of Sections 2.1 and 3.2: the environment rho (locals),
/// the operand stack stk, the non-thread-local set NL, and the abstract
/// store sigma; extended with the array-analysis maps Len and NR, and with
/// the null-or-same path facts of the Section 4.3 extension.
///
/// sigma maps (abstract reference, field) pairs to values; object arrays
/// are modeled as an object with the single collapsing field f_elems
/// (Section 2.4). A key absent from sigma/Len/NR acts as Bottom: the
/// abstract name is unpopulated on the paths reaching this state.
///
/// States are copied on every block visit and merged at every join, so
/// the three maps are sorted flat vectors (FlatMap): copies are single
/// contiguous-buffer clones and merges linear two-pointer walks.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_ANALYSISSTATE_H
#define SATB_ANALYSIS_ANALYSISSTATE_H

#include "analysis/AbstractValue.h"
#include "analysis/IntRange.h"
#include "analysis/RefUniverse.h"
#include "support/FlatMap.h"

namespace satb {

/// Key for the abstract store: (RefId, field). The field component is a
/// program FieldId or the ElemsField sentinel for array contents.
struct StoreKey {
  RefId Ref;
  uint32_t Field;

  bool operator<(const StoreKey &O) const {
    if (Ref != O.Ref)
      return Ref < O.Ref;
    return Field < O.Field;
  }
  bool operator==(const StoreKey &O) const {
    return Ref == O.Ref && Field == O.Field;
  }
};

/// A null-or-same path fact: `local[BaseLocal].Field` currently contains
/// null (established by branch refinement; see NullOrSame.h).
struct NosFact {
  uint32_t BaseLocal;
  FieldId Field;

  bool operator<(const NosFact &O) const {
    if (BaseLocal != O.BaseLocal)
      return BaseLocal < O.BaseLocal;
    return Field < O.Field;
  }
  bool operator==(const NosFact &O) const = default;
};

struct AnalysisState {
  /// Sentinel field id for the collapsed array-element pseudo-field
  /// f_elems; chosen above all program FieldIds by the analysis.
  static constexpr uint32_t ElemsFieldBase = 0x40000000;

  std::vector<AbstractValue> Locals;       ///< rho
  std::vector<AbstractValue> Stack;        ///< stk
  BitSet NL;                               ///< non-thread-local refs
  FlatMap<StoreKey, AbstractValue> Store;  ///< sigma
  FlatMap<RefId, IntVal> Len;              ///< array lengths (mode A)
  FlatMap<RefId, IntRange> NR;             ///< null ranges (mode A)
  std::vector<NosFact> Facts;              ///< sorted null-or-same facts
  /// Generational extension: abstract references proven *young* — born at
  /// an allocation younger than every GC point on every path reaching this
  /// state. The most recent allocation's R_id/A name is young until a
  /// potential GC point (a call, or a poll-site block leader) kills the
  /// whole set; merged by intersection.
  BitSet Young;

  bool operator==(const AnalysisState &O) const {
    return Locals == O.Locals && Stack == O.Stack && NL == O.NL &&
           Store == O.Store && Len == O.Len && NR == O.NR &&
           Facts == O.Facts && Young == O.Young;
  }

  // --- Stack helpers -----------------------------------------------------

  void push(AbstractValue V) { Stack.push_back(std::move(V)); }
  AbstractValue popValue() {
    assert(!Stack.empty() && "abstract stack underflow");
    AbstractValue V = std::move(Stack.back());
    Stack.pop_back();
    return V;
  }
  const AbstractValue &top() const {
    assert(!Stack.empty() && "abstract stack underflow");
    return Stack.back();
  }

  // --- Store helpers -----------------------------------------------------

  /// Raw sigma read; Bottom when the key is unpopulated.
  const AbstractValue *storeEntry(RefId R, uint32_t Field) const {
    auto It = Store.find(StoreKey{R, Field});
    return It == Store.end() ? nullptr : &It->second;
  }

  /// Len lookup; Top when untracked.
  IntVal lenOf(RefId R) const {
    auto It = Len.find(R);
    return It == Len.end() ? IntVal::top() : It->second;
  }

  /// NR lookup; Empty (no information) when untracked.
  IntRange nullRangeOf(RefId R) const {
    auto It = NR.find(R);
    return It == NR.end() ? IntRange::empty() : It->second;
  }

  // --- Null-or-same fact helpers ------------------------------------------

  bool hasFact(uint32_t Base, FieldId F) const {
    NosFact Key{Base, F};
    auto It = std::lower_bound(Facts.begin(), Facts.end(), Key);
    return It != Facts.end() && *It == Key;
  }
  void addFact(uint32_t Base, FieldId F) {
    NosFact Key{Base, F};
    auto It = std::lower_bound(Facts.begin(), Facts.end(), Key);
    if (It == Facts.end() || !(*It == Key))
      Facts.insert(It, Key);
  }
  void dropFactsForField(FieldId F) {
    std::erase_if(Facts, [F](const NosFact &X) { return X.Field == F; });
  }
  void dropFactsForBase(uint32_t Base) {
    std::erase_if(Facts, [Base](const NosFact &X) { return X.BaseLocal == Base; });
  }
};

} // namespace satb

#endif // SATB_ANALYSIS_ANALYSISSTATE_H
