//===- analysis/StateMerger.cpp -------------------------------------------===//

#include "analysis/StateMerger.h"

using namespace satb;

std::optional<IntVal> StateMerger::match(const IntVal &I1, const IntVal &I2) {
  assert(I1.hasVarTerm() && "match requires a variable term in i1");
  // i1 = a1*v1 + r1. The paper's match succeeds when i2 = a1*v2 + r2 with
  // the same coefficient, expressing v1 as v2 + (r2 - r1)/a1. We also
  // accept a variable-free i2, expressing v1 as the constant expression
  // (i2 - r1)/a1 — v1 simply has a fixed value in the incoming state (the
  // creation step records exactly such constant substitutions in mu1/mu2).
  // Division must be exact over every term.
  int64_t A1 = I1.varCoeff();
  if (I2.hasVarTerm() && I2.varCoeff() != A1)
    return std::nullopt;
  IntVal R1 = I1.substituteVar(I1.var(), IntVal::constant(0));
  IntVal R2 = I2.hasVarTerm()
                  ? I2.substituteVar(I2.var(), IntVal::constant(0))
                  : I2;
  IntVal Diff = R2 - R1;
  assert(!Diff.isTop() && Diff.isVarFree() && "residues must be linear");
  if (Diff.constTerm() % A1 != 0)
    return std::nullopt;
  for (const auto &T : Diff.unknownTerms())
    if (T.second % A1 != 0)
      return std::nullopt;
  IntVal Scaled = IntVal::constant(Diff.constTerm() / A1);
  for (const auto &T : Diff.unknownTerms())
    Scaled = Scaled + IntVal::constUnknown(T.first).mulConstant(T.second / A1);
  if (!I2.hasVarTerm())
    return Scaled;
  return IntVal::variable(I2.var()) + Scaled;
}

IntVal StateMerger::mergeIntVals(const IntVal &I1, const IntVal &I2) {
  if (I1.isTop() || I2.isTop())
    return IntVal::top();
  if (I1 == I2)
    return I1;
  if (Widen)
    return IntVal::top();
  return mergeIntValsImpl(I1, I2, Mu1, Mu2);
}

IntVal StateMerger::mergeIntValsImpl(IntVal I1, IntVal I2, Subst &M1,
                                     Subst &M2) {
  // Figure 1 lines 8-9: ensure the variable-bearing value, if only one has
  // a variable, is i1 (swapping the substitution roles with it).
  if (!I1.hasVarTerm() && I2.hasVarTerm())
    return mergeIntValsImpl(std::move(I2), std::move(I1), M2, M1);

  IntVal Delta = I2 - I1;
  if (Delta.isPureConstant() && !I1.hasVarTerm()) {
    // Lines 11-19: both values are variable-free and differ by the literal
    // constant stride Delta.
    int64_t D = Delta.constTerm();
    auto It = StrideVars.find(D);
    if (It == StrideVars.end()) {
      VarId V = Vars.allocate();
      if (V == NoVar)
        return IntVal::top();
      StrideVars.emplace(D, V);
      M1.emplace(V, I1);
      M2.emplace(V, I2);
      return IntVal::variable(V);
    }
    // A variable for this stride exists; express this component as an
    // offset from the variable's anchor value in state 1.
    VarId V = It->second;
    auto Anchor = M1.find(V);
    if (Anchor == M1.end())
      return IntVal::top();
    IntVal Offset = I1 - Anchor->second;
    if (!Offset.isVarFree())
      return IntVal::top();
    return IntVal::variable(V) + Offset;
  }

  if (I1.hasVarTerm()) {
    // Lines 21-31: i1 carries variable v1.
    VarId V1 = I1.var();
    auto It = M2.find(V1);
    if (It != M2.end()) {
      // A substitution for v1 already exists in state 2; the merge keeps
      // i1 only if the substitution reconciles the two values.
      if (I1.substituteVar(V1, It->second) == I2)
        return I1;
      return IntVal::top();
    }
    if (std::optional<IntVal> S = match(I1, I2)) {
      M2.emplace(V1, std::move(*S));
      return I1;
    }
    return IntVal::top();
  }

  return IntVal::top();
}

namespace {

/// The non-Figure-1 integer merge used for sigma entries and Len (only
/// rho/stk integers and NR bounds are "integer state components" per
/// Section 3.5).
IntVal simpleIntMerge(const IntVal &A, const IntVal &B) {
  return A == B ? A : IntVal::top();
}

/// \returns true if Full range \p R covers its array's top end: hi + 1 ==
/// the array length known in the same state.
bool fromEquivalent(const IntRange &R, const IntVal &Len) {
  return R.kind() == IntRange::Kind::Full && !Len.isTop() &&
         R.hi().addConstant(1) == Len;
}

/// \returns true if Full range \p R starts at index 0.
bool toEquivalent(const IntRange &R) {
  return R.kind() == IntRange::Kind::Full && R.lo() == IntVal::constant(0);
}

} // namespace

IntRange StateMerger::mergeRanges(const IntRange &R1, const IntRange &R2) {
  // Callers pre-resolved the per-state array lengths into the bounds where
  // needed; this overload only merges like kinds (see merge()).
  if (R1.isEmpty() || R2.isEmpty())
    return IntRange::empty();

  using K = IntRange::Kind;
  if (R1.kind() == K::Full && R2.kind() == K::Full) {
    IntVal Lo = mergeIntVals(R1.lo(), R2.lo());
    IntVal Hi = mergeIntVals(R1.hi(), R2.hi());
    if (!Lo.isTop() && !Hi.isTop())
      return IntRange::full(std::move(Lo), std::move(Hi));
    return IntRange::empty();
  }
  if (R1.kind() == K::From && R2.kind() == K::From) {
    IntVal Lo = mergeIntVals(R1.lo(), R2.lo());
    return Lo.isTop() ? IntRange::empty() : IntRange::from(std::move(Lo));
  }
  if (R1.kind() == K::To && R2.kind() == K::To) {
    IntVal Hi = mergeIntVals(R1.hi(), R2.hi());
    return Hi.isTop() ? IntRange::empty() : IntRange::to(std::move(Hi));
  }
  return IntRange::empty();
}

bool StateMerger::merge(AnalysisState &Stored, const AnalysisState &Incoming) {
  assert(Stored.Locals.size() == Incoming.Locals.size() &&
         "local counts disagree");
  assert(Stored.Stack.size() == Incoming.Stack.size() &&
         "operand stacks disagree at join point");
  bool Changed = false;
  auto FigMerge = [this](const IntVal &A, const IntVal &B) {
    return mergeIntVals(A, B);
  };

  for (size_t I = 0, E = Stored.Locals.size(); I != E; ++I)
    Changed |= Stored.Locals[I].mergeFrom(Incoming.Locals[I], FigMerge);
  for (size_t I = 0, E = Stored.Stack.size(); I != E; ++I)
    Changed |= Stored.Stack[I].mergeFrom(Incoming.Stack[I], FigMerge);

  BitSet NLBefore = Stored.NL;
  Stored.NL |= Incoming.NL;
  Changed |= Stored.NL != NLBefore;

  // Young merges by intersection: a reference is young at a join only if
  // it is young on every path into it (a may-have-survived-a-GC reference
  // must not skip the remembered-set barrier).
  BitSet YoungBefore = Stored.Young;
  Stored.Young &= Incoming.Young;
  Changed |= Stored.Young != YoungBefore;

  // sigma: pointwise, absent keys acting as Bottom. One linear walk per
  // map (see FlatMap::mergeWith).
  Changed |= Stored.Store.mergeWith(
      Incoming.Store,
      [](const StoreKey &, AbstractValue &S, const AbstractValue &I) {
        return S.mergeFrom(I, simpleIntMerge);
      });

  // Len: structural merge (equal or Top).
  Changed |= Stored.Len.mergeWith(
      Incoming.Len, [](RefId, IntVal &S, const IntVal &I) {
        IntVal Merged = simpleIntMerge(S, I);
        if (Merged == S)
          return false;
        S = std::move(Merged);
        return true;
      });

  // NR: like kinds merge bound-wise; a Full range mixes with a half-open
  // range only when it is equivalent to that half-open form (a Full range
  // reaching its array's last index equals a From range; one starting at 0
  // equals a To range). This is the merge of the paper's expand example:
  // Full[0..2c0-1] (with Len = 2c0) merged with From[1..] gives From[v..].
  // Runs after the Len merge so Stored.lenOf sees the merged lengths, as
  // the map-based merge always did.
  Changed |= Stored.NR.mergeWith(
      Incoming.NR,
      [&](RefId Ref, IntRange &SR, const IntRange &R2In) {
        IntRange R1 = SR;
        IntRange R2 = R2In;
        using K = IntRange::Kind;
        if (R1.kind() != R2.kind() && !R1.isEmpty() && !R2.isEmpty()) {
          // Try to reconcile a Full with the other side's half-open kind.
          if (R1.kind() == K::Full) {
            if (R2.kind() == K::From && fromEquivalent(R1, Stored.lenOf(Ref)))
              R1 = IntRange::from(R1.lo());
            else if (R2.kind() == K::To && toEquivalent(R1))
              R1 = IntRange::to(R1.hi());
          } else if (R2.kind() == K::Full) {
            if (R1.kind() == K::From &&
                fromEquivalent(R2, Incoming.lenOf(Ref)))
              R2 = IntRange::from(R2.lo());
            else if (R1.kind() == K::To && toEquivalent(R2))
              R2 = IntRange::to(R2.hi());
          }
        }
        IntRange Merged = R1.kind() == R2.kind() ? mergeRanges(R1, R2)
                                                 : IntRange::empty();
        if (Merged == SR)
          return false;
        SR = std::move(Merged);
        return true;
      });

  // Null-or-same facts merge by intersection.
  if (!Stored.Facts.empty()) {
    std::vector<NosFact> Kept;
    Kept.reserve(Stored.Facts.size());
    for (const NosFact &F : Stored.Facts)
      if (Incoming.hasFact(F.BaseLocal, F.Field))
        Kept.push_back(F);
    if (Kept != Stored.Facts) {
      Stored.Facts = std::move(Kept);
      Changed = true;
    }
  }

  return Changed;
}
