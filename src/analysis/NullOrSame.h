//===- analysis/NullOrSame.h - Section 4.3 extension helpers ---*- C++ -*-===//
///
/// \file
/// The null-or-same analysis the paper sketches in Section 4.3: a store
/// needs no SATB barrier if it "either overwrites null, or else writes the
/// value the field already contains". The paper proves such sites by
/// inspection (e.g. `entry = e` in Hashtable.hasMoreElements) and reports
/// they account for 15% / 14% / 4% of barriers in javac / jack / jbb; we
/// implement the automated version as an optional extension.
///
/// Mechanism (see AbstractValue.h for the tag encoding):
///   - `getfield local[b].f` tags the loaded value Eq(b, f): it equals the
///     field's current contents.
///   - Branching on a null check of an Eq(b, f)-tagged value establishes
///     the path fact "local[b].f is null" on the null edge; while such a
///     fact holds, every value is Safe(b, f) (storing anything over a null
///     field is a pre-null store).
///   - Tags and facts die when local b is reassigned, when field f is
///     written, or at any call; state merges intersect them.
///   - At `putfield f` with base local b, the barrier is unnecessary if
///     the stored value carries a (b, f) tag or the fact "local[b].f is
///     null" holds.
///
/// Unsynchronized writes by other threads invalidate the reasoning
/// (Section 4.3 end); by default elision additionally requires the base
/// object thread-local, and the AssumeNoRaces knob reproduces the paper's
/// inspection-based justification for synchronized code.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_NULLORSAME_H
#define SATB_ANALYSIS_NULLORSAME_H

#include "analysis/AnalysisState.h"

namespace satb {
namespace nos {

/// Applies every live fact (b, f) to \p V as a Safe tag. Call on every
/// freshly produced reference value.
void applyFacts(const AnalysisState &S, AbstractValue &V);

/// Reference local \p Base was reassigned: kill tags/facts based on it.
void onLocalReassigned(AnalysisState &S, uint32_t Base);

/// Field \p F was written (any base): kill tags/facts mentioning it.
void onFieldWritten(AnalysisState &S, FieldId F);

/// A call happened: the callee may write anything; kill all tags/facts.
void onCall(AnalysisState &S);

/// The value \p NullSide is known null on the current edge: promote its Eq
/// tags to facts and saturate existing values with the new Safe tags.
void onKnownNull(AnalysisState &S, const AbstractValue &NullSide);

} // namespace nos
} // namespace satb

#endif // SATB_ANALYSIS_NULLORSAME_H
