//===- analysis/StateMerger.h - State merging incl. Figure 1 ---*- C++ -*-===//
///
/// \file
/// Merging of abstract program states at control-flow joins (Sections 2.2
/// and 3.5). Reference sets merge by union, NL by union, sigma/Len/NR
/// pointwise with absent keys acting as Bottom, and null-or-same facts by
/// intersection.
///
/// Integer state components — integer-valued locals and stack slots, and
/// the bounds of uninitialized ranges — merge through the merge_intvals
/// procedure of Figure 1: when two components differ by the same constant
/// stride, a shared variable unknown is created (or reused) so the merged
/// state can express that they vary together. The U / mu1 / mu2 maps live
/// for the duration of one state merge.
///
/// Erroneous fixed-stride assumptions are harmless: the fixpoint iteration
/// validates them and degrades the offending component to Top (Section
/// 3.5). A per-merge widening flag disables variable creation so the
/// driver can force convergence after a visit budget.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_STATEMERGER_H
#define SATB_ANALYSIS_STATEMERGER_H

#include "analysis/AnalysisState.h"

namespace satb {

/// Allocates variable unknowns for one analysis run, with a hard cap as a
/// termination backstop (past the cap merges degrade to Top).
class VarAllocator {
public:
  explicit VarAllocator(uint32_t Cap = 512) : Cap(Cap) {}

  /// \returns a fresh VarId, or NoVar if the cap is exhausted.
  VarId allocate() { return Next < Cap ? Next++ : NoVar; }

private:
  uint32_t Next = 0;
  uint32_t Cap;
};

/// Merges one incoming state into a stored block in-state. Construct one
/// merger per merge operation: it owns the per-merge U / mu maps.
class StateMerger {
public:
  /// \p Widen forces differing integer components to Top instead of
  /// creating variable unknowns (used past the block-visit budget).
  StateMerger(VarAllocator &Vars, bool Widen) : Vars(Vars), Widen(Widen) {}

  /// Merges \p Incoming into \p Stored. \returns true if \p Stored changed.
  /// Stack shapes must agree (the verifier guarantees this).
  bool merge(AnalysisState &Stored, const AnalysisState &Incoming);

  /// The merge_intvals procedure of Figure 1. Public for direct unit
  /// testing. \p I1 is the stored state's component, \p I2 the incoming
  /// state's.
  IntVal mergeIntVals(const IntVal &I1, const IntVal &I2);

private:
  using Subst = FlatMap<VarId, IntVal>;

  /// Figure 1 with explicit substitution maps; \p M1/\p M2 follow any swap
  /// of i1/i2.
  IntVal mergeIntValsImpl(IntVal I1, IntVal I2, Subst &M1, Subst &M2);

  /// match(i1, i2): i1 has variable term a1*v1; succeeds when i2 has a
  /// variable term with the same coefficient a1, returning the IntVal that
  /// expresses v1 in terms of i2's variable plus a constant expression.
  static std::optional<IntVal> match(const IntVal &I1, const IntVal &I2);

  /// Merges two null ranges; bound merging goes through mergeIntVals so
  /// range bounds participate in common-stride inference.
  IntRange mergeRanges(const IntRange &R1, const IntRange &R2);

  VarAllocator &Vars;
  bool Widen;
  /// U: stride -> variable unknown (keyed by the pure-constant delta).
  FlatMap<int64_t, VarId> StrideVars;
  Subst Mu1, Mu2;
};

} // namespace satb

#endif // SATB_ANALYSIS_STATEMERGER_H
