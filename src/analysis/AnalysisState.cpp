//===- analysis/AnalysisState.cpp -----------------------------------------===//
///
/// \file
/// AnalysisState is header-only; this file anchors the library.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisState.h"
