//===- analysis/BarrierAnalysis.cpp - Transfer functions + fixpoint -------===//
///
/// \file
/// Implements the abstract semantics of Sections 2.4 and 3.3, the fixpoint
/// driver, and the elision judgments. Structure:
///
///   BarrierAnalyzer::run          worklist fixpoint, then judgment pass
///   BarrierAnalyzer::transfer     per-instruction abstract semantics
///   BarrierAnalyzer::judge*       the elision judgments at stores
///   allNonTL / allNonTLCond       escape propagation (Section 2.4)
///   substForAllocation            rngSubst/transfer/replS at allocations
///
//===----------------------------------------------------------------------===//

#include "analysis/BarrierAnalysis.h"

#include "analysis/AnalysisState.h"
#include "analysis/NullOrSame.h"
#include "analysis/StateMerger.h"
#include "cfg/ControlFlowGraph.h"
#include "support/Stopwatch.h"

#include <deque>
#include <optional>
#include <queue>

using namespace satb;

namespace {

IntVal simpleIntMerge(const IntVal &A, const IntVal &B) {
  return A == B ? A : IntVal::top();
}

/// Computes, for every method of \p P, whether it is a *pure reader*: no
/// putfield/putstatic/aastore/iastore anywhere, no reference-typed return
/// (a returned reference could alias an argument, laundering a
/// thread-local object into GlobalRef), and only calls to other pure
/// readers. Fixpoint over the call graph; cycles start impure and can
/// never become pure through themselves, so iterating to stability is
/// sound and terminates (purity only ever turns off).
std::vector<bool> computePureReaders(const Program &P) {
  const uint32_t N = P.numMethods();
  std::vector<bool> Pure(N, true);
  for (uint32_t M = 0; M != N; ++M) {
    const Method &Body = P.method(M);
    if (Body.ReturnType && *Body.ReturnType == JType::Ref) {
      Pure[M] = false;
      continue;
    }
    for (const Instruction &Ins : Body.Instructions) {
      switch (Ins.Op) {
      case Opcode::PutField:
      case Opcode::PutStatic:
      case Opcode::AAStore:
      case Opcode::IAStore:
      case Opcode::ArrayFill:
      case Opcode::ArrayCopy:
        Pure[M] = false;
        break;
      default:
        break;
      }
      if (!Pure[M])
        break;
    }
  }
  // Propagate impurity through call sites to a fixed point.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t M = 0; M != N; ++M) {
      if (!Pure[M])
        continue;
      for (const Instruction &Ins : P.method(M).Instructions) {
        if (Ins.Op == Opcode::Invoke &&
            !Pure[static_cast<MethodId>(Ins.A)]) {
          Pure[M] = false;
          Changed = true;
          break;
        }
      }
    }
  }
  return Pure;
}

class BarrierAnalyzer {
public:
  BarrierAnalyzer(const Program &P, const Method &M,
                  const AnalysisConfig &Cfg)
      : P(P), M(M), Cfg(Cfg), Refs(M, Cfg.TwoNamesPerSite), CFG(M),
        Vars(Cfg.MaxVars) {
    if (Cfg.UseCalleeSummaries && Cfg.Mode != AnalysisMode::None)
      PureReaders = computePureReaders(P);
    // Safepoint poll sites, computed exactly as the fast-interpreter
    // translation places them (FastTranslate: backward-branch targets). A
    // minor GC can run at a poll or inside an allocation/call, so the
    // Young set dies at each. Computed unconditionally: when safepoints
    // are not inserted this only costs precision, never soundness.
    PollKill.assign(M.Instructions.size(), false);
    for (uint32_t PC = 0; PC != M.Instructions.size(); ++PC) {
      const Instruction &Ins = M.Instructions[PC];
      if (isBranch(Ins.Op) && static_cast<uint32_t>(Ins.A) <= PC)
        PollKill[static_cast<uint32_t>(Ins.A)] = true;
    }
  }

  AnalysisResult run();

private:
  bool modeA() const { return Cfg.Mode == AnalysisMode::FieldAndArray; }
  bool nosOn() const { return Cfg.EnableNullOrSame; }

  /// In FieldOnly mode integer values are not tracked (Figure 2's F
  /// configuration); everything integral is Top.
  IntVal mkInt(IntVal V) const { return modeA() ? std::move(V) : IntVal::top(); }

  AbstractValue nullRef() const {
    return AbstractValue::nullRef(Refs.numRefs());
  }
  AbstractValue globalRef() const {
    return AbstractValue::singleRef(Refs.numRefs(), RefUniverse::GlobalRef);
  }
  AbstractValue singleRef(RefId R) const {
    return AbstractValue::singleRef(Refs.numRefs(), R);
  }

  void pushRef(AnalysisState &S, AbstractValue V) {
    if (nosOn())
      nos::applyFacts(S, V);
    S.push(std::move(V));
  }
  void pushInt(AnalysisState &S, IntVal V) {
    S.push(AbstractValue::intVal(mkInt(std::move(V))));
  }

  /// lookup(sigma, r, NL, f) of Section 2.4: {GlobalRef} (or Top for an
  /// int field) when r is non-thread-local, else sigma(r, f).
  AbstractValue lookupField(const AnalysisState &S, RefId R, uint32_t Field,
                            JType Ty) const {
    if (S.NL.test(R))
      return Ty == JType::Ref ? globalRef()
                              : AbstractValue::intVal(IntVal::top());
    if (const AbstractValue *E = S.storeEntry(R, Field))
      return *E;
    // Unpopulated entry: the object cannot actually have this field (the
    // access traps at runtime), so any value is sound.
    return Ty == JType::Ref ? nullRef() : AbstractValue::intVal(IntVal::top());
  }

  /// Joins lookups over every member of \p Obj.
  AbstractValue lookupJoin(const AnalysisState &S, const AbstractValue &Obj,
                           uint32_t Field, JType Ty) const {
    AbstractValue Result = AbstractValue::bottom();
    if (Obj.isRefs())
      Obj.refSet().forEach([&](size_t Ot) {
        Result.mergeFrom(lookupField(S, static_cast<RefId>(Ot), Field, Ty),
                         simpleIntMerge);
      });
    if (Result.isBottom())
      Result = Ty == JType::Ref ? nullRef()
                                : AbstractValue::intVal(IntVal::top());
    return Result;
  }

  /// AllNonTL: extends NL with \p RS and everything transitively reachable
  /// from it through sigma.
  void allNonTL(AnalysisState &S, const BitSet &RS) const {
    std::vector<RefId> Work;
    RS.forEach([&](size_t R) {
      if (!S.NL.test(R)) {
        S.NL.set(R);
        Work.push_back(static_cast<RefId>(R));
      }
    });
    while (!Work.empty()) {
      RefId R = Work.back();
      Work.pop_back();
      for (auto It = S.Store.lower_bound(StoreKey{R, 0});
           It != S.Store.end() && It->first.Ref == R; ++It) {
        if (!It->second.isRefs())
          continue;
        It->second.refSet().forEach([&](size_t R2) {
          if (!S.NL.test(R2)) {
            S.NL.set(R2);
            Work.push_back(static_cast<RefId>(R2));
          }
        });
      }
    }
  }

  /// AllNonTLCond: if any base in \p Obj may be non-thread-local, the
  /// stored value (and its reachable closure) escapes.
  void allNonTLCond(AnalysisState &S, const AbstractValue &Obj,
                    const AbstractValue &Val) const {
    if (!Val.isRefs())
      return;
    bool MayEscape = !Obj.isRefs() || Obj.refSet().intersects(S.NL);
    if (MayEscape)
      allNonTL(S, Val.refSet());
  }

  void substRefInValues(AnalysisState &S, RefId A, RefId B) const {
    auto Subst = [&](AbstractValue &V) {
      if (V.isRefs() && V.refSet().test(A)) {
        V.refSet().reset(A);
        V.refSet().set(B);
      }
    };
    for (AbstractValue &V : S.Locals)
      Subst(V);
    for (AbstractValue &V : S.Stack)
      Subst(V);
    for (auto &KV : S.Store)
      Subst(KV.second);
  }

  /// The newinstance/newarray bookkeeping of Section 2.4 (rngSubst +
  /// transfer + replS: merge R_id/A's attributes into R_id/B so R_id/A is
  /// free to denote the new allocation) fused with the installation of the
  /// fresh object's zeroed state. Fusing the two steps lets the steady
  /// state — every fixpoint visit of an allocation after the first, where
  /// R_A's store run already holds exactly the fresh key set — overwrite
  /// values in place instead of erasing and re-inserting, so the flat
  /// store vector never shifts.
  ///
  /// \p ClassFields is the allocated class's field list for NewInstance
  /// (null for arrays); \p FreshElems installs the f_elems entry of a
  /// fresh reference array; \p NewLen / \p NewNR are the mode-A length and
  /// null range of a fresh array (null when untracked).
  void reallocate(AnalysisState &S, uint32_t Site,
                  const std::vector<FieldId> *ClassFields, bool FreshElems,
                  const IntVal *NewLen, const IntRange *NewNR) {
    RefId A = Refs.siteA(Site), B = Refs.siteB(Site);

    const size_t NumFresh =
        ClassFields ? ClassFields->size() : (FreshElems ? 1 : 0);
    auto FreshKeyAt = [&](size_t I) -> uint32_t {
      return ClassFields ? (*ClassFields)[I] : AnalysisState::ElemsFieldBase;
    };
    auto FreshValueAt = [&](size_t I) -> AbstractValue {
      if (!ClassFields)
        return nullRef(); // f_elems of a fresh reference array
      return P.fieldDecl((*ClassFields)[I]).Type == JType::Ref
                 ? nullRef()
                 : AbstractValue::intVal(mkInt(IntVal::constant(0)));
    };
    // In-place form of `Slot = FreshValueAt(I)` that reuses Slot's
    // existing RefSet allocation when it is already a reference value
    // (the common steady-state case).
    auto AssignFreshTo = [&](AbstractValue &Slot, size_t I) {
      bool WantNullRef =
          !ClassFields || P.fieldDecl((*ClassFields)[I]).Type == JType::Ref;
      if (WantNullRef && Slot.isRefs()) {
        Slot.refSet().clear();
        Slot.clearSrcLocal();
        Slot.clearNosTags();
        return;
      }
      Slot = FreshValueAt(I);
    };

    if (A == B) {
      // One-name ablation mode: no substitution; the site's single summary
      // name takes weak (joining) initialization.
      for (size_t I = 0; I != NumFresh; ++I)
        setFreshEntry(S, A, FreshKeyAt(I), FreshValueAt(I));
      if (NewLen) {
        auto It = S.Len.find(A);
        if (It == S.Len.end())
          S.Len.emplace(A, *NewLen);
        else
          It->second = simpleIntMerge(It->second, *NewLen);
      }
      if (NewNR) {
        auto It = S.NR.find(A);
        if (It == S.NR.end())
          S.NR.emplace(A, *NewNR);
        else if (It->second != *NewNR)
          It->second = IntRange::empty();
      }
      return;
    }

    substRefInValues(S, A, B);
    if (S.NL.test(A)) {
      S.NL.reset(A);
      S.NL.set(B);
    }

    // sigma. A's entries form one contiguous run of the flat store, with
    // B's run (B == A + 1) immediately after it, so merging into B never
    // shifts A's run: its indices stay valid across the B inserts.
    const size_t FirstIdx =
        static_cast<size_t>(S.Store.lower_bound(StoreKey{A, 0}) -
                            S.Store.begin());
    size_t RunLen = 0;
    bool SameKeys = true;
    for (auto It = S.Store.begin() + FirstIdx;
         It != S.Store.end() && It->first.Ref == A; ++It, ++RunLen)
      SameKeys &= RunLen < NumFresh && It->first.Field == FreshKeyAt(RunLen);
    SameKeys &= RunLen == NumFresh;

    // transfer(sigma, R_A, R_B): join A's current values into B's. The
    // entry reference is re-derived by index each iteration because an
    // insert into B's run may reallocate the store vector; A's slots are
    // read (not moved from) so the steady-state path below can reuse
    // their allocations.
    for (size_t I = 0; I != RunLen; ++I) {
      StoreKey NewKey{B, (S.Store.begin() + FirstIdx + I)->first.Field};
      auto It = S.Store.find(NewKey);
      if (It == S.Store.end()) {
        AbstractValue Copy = (S.Store.begin() + FirstIdx + I)->second;
        S.Store.emplace(NewKey, std::move(Copy));
      } else {
        It->second.mergeFrom((S.Store.begin() + FirstIdx + I)->second,
                             simpleIntMerge);
      }
    }

    if (SameKeys) {
      // Steady state: the run already holds exactly the fresh keys;
      // overwrite the values in place, reusing their allocations.
      for (size_t I = 0; I != NumFresh; ++I)
        AssignFreshTo((S.Store.begin() + FirstIdx + I)->second, I);
    } else {
      // First visit of this site (or extra fields were written through
      // R_A): reshape the run the slow way.
      auto RunFirst = S.Store.begin() + FirstIdx;
      S.Store.erase(RunFirst, RunFirst + RunLen);
      for (size_t I = 0; I != NumFresh; ++I)
        S.Store[StoreKey{A, FreshKeyAt(I)}] = FreshValueAt(I);
    }

    // Len / NR: merge A's entry into B's, then replace A's value in place
    // with the fresh array's (when tracked) rather than erase + reinsert.
    if (auto It = S.Len.find(A); It != S.Len.end()) {
      IntVal LA = std::move(It->second);
      auto BIt = S.Len.find(B);
      if (BIt == S.Len.end())
        S.Len.emplace(B, std::move(LA)); // invalidates It
      else
        BIt->second = simpleIntMerge(BIt->second, LA);
      if (NewLen)
        S.Len.find(A)->second = *NewLen;
      else
        S.Len.erase(A);
    } else if (NewLen) {
      S.Len[A] = *NewLen;
    }
    if (auto It = S.NR.find(A); It != S.NR.end()) {
      IntRange RA = std::move(It->second);
      auto BIt = S.NR.find(B);
      if (BIt == S.NR.end())
        S.NR.emplace(B, std::move(RA)); // invalidates It
      else if (BIt->second != RA)
        BIt->second = IntRange::empty();
      if (NewNR)
        S.NR.find(A)->second = *NewNR;
      else
        S.NR.erase(A);
    } else if (NewNR) {
      S.NR[A] = *NewNR;
    }
  }

  /// Installs the freshly allocated object's zeroed field state. With the
  /// one-name ablation the site's single summary name must join (weak
  /// initialization) rather than overwrite.
  void setFreshEntry(AnalysisState &S, RefId R, uint32_t Field,
                     AbstractValue Init) const {
    if (Cfg.TwoNamesPerSite) {
      S.Store[StoreKey{R, Field}] = std::move(Init);
      return;
    }
    auto It = S.Store.find(StoreKey{R, Field});
    if (It == S.Store.end())
      S.Store.emplace(StoreKey{R, Field}, std::move(Init));
    else
      It->second.mergeFrom(Init, simpleIntMerge);
  }

  void transfer(AnalysisState &S, uint32_t InstrIdx);

  void judgePutField(const AnalysisState &S, const AbstractValue &Obj,
                     const AbstractValue &Val, FieldId F, uint32_t InstrIdx);
  void judgeAAStore(const AnalysisState &S, const AbstractValue &Arr,
                    const AbstractValue &Ind, uint32_t InstrIdx);
  void judgeRangeStore(const AnalysisState &S, const AbstractValue &Arr,
                       const AbstractValue &Start, const AbstractValue &Cnt,
                       uint32_t InstrIdx);
  bool indexInNullRange(const AnalysisState &S, RefId At,
                        const IntVal &Ind) const;
  bool rangeInNullRange(const AnalysisState &S, RefId At, const IntVal &Start,
                        const IntVal &Cnt) const;
  /// Shared abstract effect of a bulk store: escape, the weak f_elems
  /// update, and the null-range contraction over [Start .. Start+Cnt).
  void rangeStoreEffect(AnalysisState &S, const AbstractValue &Arr,
                        AbstractValue Val, const AbstractValue &Start,
                        const AbstractValue &Cnt);

  AnalysisState initialState();

  /// Renders \p S (a block's fixpoint in-state) for CaptureStates dumps,
  /// in the paper's notation: rho, NL, sigma, Len, NR.
  std::string dumpState(const AnalysisState &S) const;

  /// Processes one block in place from \p S (the caller's scratch copy of
  /// the block's in-state), emitting one out state per successor slot via
  /// \p EmitOut(slot, state, lastUse). When lastUse is true the emitted
  /// state is dead afterwards and may be moved from.
  template <typename FnT>
  void processBlock(uint32_t BI, AnalysisState &S, FnT EmitOut);

  const Program &P;
  const Method &M;
  const AnalysisConfig &Cfg;
  RefUniverse Refs;
  ControlFlowGraph CFG;
  std::vector<bool> PureReaders;
  ConstUnknownRegistry ConstReg;
  VarAllocator Vars;
  /// Instruction indices where a safepoint poll may run a minor GC
  /// (backward-branch targets; always block leaders).
  std::vector<bool> PollKill;
  AnalysisResult Result;
  /// Reused across block visits so the per-visit in-state copy lands in
  /// already-allocated vectors instead of fresh heap blocks.
  AnalysisState Scratch;
  bool Judging = false;
};

AnalysisState BarrierAnalyzer::initialState() {
  AnalysisState S;
  S.Locals.resize(M.NumLocals);
  S.NL = BitSet(Refs.numRefs());
  // No reference is young on entry (the caller may have crossed any
  // number of GC points since its allocations).
  S.Young = BitSet(Refs.numRefs());
  // NL is initialized to {GlobalRef}; all references reachable via
  // GlobalRef are collapsed into GlobalRef (Section 2.3), which lookupField
  // realizes by answering {GlobalRef} for NL members.
  S.NL.set(RefUniverse::GlobalRef);

  for (uint32_t A = 0, E = M.numArgs(); A != E; ++A) {
    if (M.ArgTypes[A] == JType::Int) {
      // Section 3.4: a constant unknown per integer parameter.
      S.Locals[A] = AbstractValue::intVal(
          mkInt(IntVal::constUnknown(ConstReg.create(/*NonNegative=*/false))));
      continue;
    }
    RefId R = Refs.argRef(A);
    S.Locals[A] = singleRef(R);
    if (M.IsConstructor && A == 0) {
      // The constructor's `this` is unique and thread-local on entry, with
      // the fields declared by its class known null (Section 2.3).
      if (M.Owner != InvalidId)
        for (FieldId F : P.classDecl(M.Owner).Fields)
          S.Store[StoreKey{R, F}] =
              P.fieldDecl(F).Type == JType::Ref
                  ? nullRef()
                  : AbstractValue::intVal(mkInt(IntVal::constant(0)));
      continue;
    }
    // Other reference arguments are non-unique and non-thread-local
    // (Section 2.1); they may still carry a symbolic array length
    // (Section 3.4: Len(R_arg(i)) = c_i, a fresh non-negative unknown).
    S.NL.set(R);
    if (modeA())
      S.Len.emplace(R, IntVal::constUnknown(ConstReg.create(true)));
  }
  return S;
}

void BarrierAnalyzer::judgePutField(const AnalysisState &S,
                                    const AbstractValue &Obj,
                                    const AbstractValue &Val, FieldId F,
                                    uint32_t InstrIdx) {
  BarrierDecision &D = Result.Decisions[InstrIdx];
  if (Obj.isBottom()) {
    D.Elide = true;
    D.Reason = ElisionReason::DeadCode;
    return;
  }
  if (!Obj.isRefs())
    return;

  // Generational judgment: every possible target is proven young, so the
  // store cannot create an old-to-young edge.
  bool AllYoung = !Obj.refSet().empty();
  Obj.refSet().forEach([&](size_t Ot) {
    if (!S.Young.test(Ot))
      AllYoung = false;
  });
  D.TargetYoung = AllYoung;

  // Section 2.4: forall ot in obj: ot not in NL and sigma(ot, f) = {}.
  bool AllPreNull = true;
  Obj.refSet().forEach([&](size_t Ot) {
    RefId R = static_cast<RefId>(Ot);
    if (S.NL.test(R)) {
      AllPreNull = false;
      return;
    }
    const AbstractValue *E = S.storeEntry(R, F);
    if (!E || !E->isDefinitelyNull())
      AllPreNull = false;
  });
  if (AllPreNull) {
    D.Elide = true;
    D.Reason = ElisionReason::PreNullField;
    return;
  }

  // Section 4.3 extension: the store writes null-or-same.
  if (!nosOn())
    return;
  uint32_t Base = Obj.srcLocal();
  if (Base == InvalidId)
    return;
  bool TagOk = Val.findNosTag(Base, F) != nullptr;
  bool FactOk = S.hasFact(Base, F);
  if (!TagOk && !FactOk)
    return;
  if (!Cfg.NosAssumeNoRaces) {
    // Another mutator overwriting the field between our load and store
    // invalidates the reasoning, so require thread locality.
    bool ThreadLocal = true;
    Obj.refSet().forEach([&](size_t Ot) {
      if (S.NL.test(static_cast<RefId>(Ot)))
        ThreadLocal = false;
    });
    if (!ThreadLocal)
      return;
  }
  D.Elide = true;
  D.Reason = ElisionReason::NullOrSame;
}

bool BarrierAnalyzer::indexInNullRange(const AnalysisState &S, RefId At,
                                       const IntVal &Ind) const {
  const IntRange R = S.nullRangeOf(At);
  // A lower bound of exactly 0 is discharged by the runtime bounds check:
  // a negative index traps before writing (Section 3.6).
  auto LowerOk = [&](const IntVal &Lo) {
    return Lo == IntVal::constant(0) ||
           provablyNonNegative(Ind - Lo, ConstReg);
  };
  switch (R.kind()) {
  case IntRange::Kind::Empty:
    return false;
  case IntRange::Kind::From:
    // [lo..]: need lo <= Ind; the bounds check discharges Ind < length.
    return LowerOk(R.lo());
  case IntRange::Kind::To:
    // [..hi]: need Ind <= hi; a negative Ind traps before writing.
    return !R.hi().isTop() && provablyNonNegative(R.hi() - Ind, ConstReg);
  case IntRange::Kind::Full: {
    if (!LowerOk(R.lo()))
      return false;
    const IntVal &Hi = R.hi();
    if (Hi.isTop())
      return false;
    if (provablyNonNegative(Hi - Ind, ConstReg))
      return true;
    // When the range's upper bound is the array's last valid index, the
    // runtime bounds check discharges the upper side.
    IntVal Len = S.lenOf(At);
    return !Len.isTop() && Hi.addConstant(1) == Len;
  }
  }
  return false;
}

void BarrierAnalyzer::judgeAAStore(const AnalysisState &S,
                                   const AbstractValue &Arr,
                                   const AbstractValue &Ind,
                                   uint32_t InstrIdx) {
  BarrierDecision &D = Result.Decisions[InstrIdx];
  if (Arr.isBottom()) {
    D.Elide = true;
    D.Reason = ElisionReason::DeadCode;
    return;
  }
  // Generational judgment (independent of mode A: no index facts needed).
  if (Arr.isRefs() && !Arr.refSet().empty()) {
    bool AllYoung = true;
    Arr.refSet().forEach([&](size_t At) {
      if (!S.Young.test(At))
        AllYoung = false;
    });
    D.TargetYoung = AllYoung;
  }
  if (!modeA() || !Arr.isRefs() || !Ind.isInt() || Ind.intValue().isTop())
    return;
  bool Ok = true;
  Arr.refSet().forEach([&](size_t At) {
    RefId R = static_cast<RefId>(At);
    if (S.NL.test(R) || !indexInNullRange(S, R, Ind.intValue()))
      Ok = false;
  });
  if (Ok) {
    D.Elide = true;
    D.Reason = ElisionReason::PreNullArrayElement;
  }
}

bool BarrierAnalyzer::rangeInNullRange(const AnalysisState &S, RefId At,
                                       const IntVal &Start,
                                       const IntVal &Cnt) const {
  const IntRange R = S.nullRangeOf(At);
  // The whole destination [Start .. Start+Cnt) must lie inside the null
  // range. As with the per-slot judgment, the runtime bounds check
  // discharges what it already enforces: Start < 0 traps before any slot
  // is written, and Start+Cnt <= length likewise.
  const IntVal Last = Start + Cnt.addConstant(-1);
  auto LowerOk = [&](const IntVal &Lo) {
    return Lo == IntVal::constant(0) ||
           provablyNonNegative(Start - Lo, ConstReg);
  };
  switch (R.kind()) {
  case IntRange::Kind::Empty:
    return false;
  case IntRange::Kind::From:
    // [lo..]: need lo <= Start; the bounds check discharges the top end.
    return LowerOk(R.lo());
  case IntRange::Kind::To:
    // [..hi]: need Start+Cnt-1 <= hi; a negative start traps first.
    return !R.hi().isTop() && provablyNonNegative(R.hi() - Last, ConstReg);
  case IntRange::Kind::Full: {
    if (!LowerOk(R.lo()))
      return false;
    const IntVal &Hi = R.hi();
    if (Hi.isTop())
      return false;
    if (provablyNonNegative(Hi - Last, ConstReg))
      return true;
    // When the range's upper bound is the array's last valid index, the
    // runtime bounds check discharges the upper side.
    IntVal Len = S.lenOf(At);
    return !Len.isTop() && Hi.addConstant(1) == Len;
  }
  }
  return false;
}

void BarrierAnalyzer::judgeRangeStore(const AnalysisState &S,
                                      const AbstractValue &Arr,
                                      const AbstractValue &Start,
                                      const AbstractValue &Cnt,
                                      uint32_t InstrIdx) {
  BarrierDecision &D = Result.Decisions[InstrIdx];
  if (Arr.isBottom()) {
    D.Elide = true;
    D.Reason = ElisionReason::DeadCode;
    return;
  }
  // Generational judgment: identical to the per-slot one — the whole range
  // lands in one object, so one young destination proof covers it.
  if (Arr.isRefs() && !Arr.refSet().empty()) {
    bool AllYoung = true;
    Arr.refSet().forEach([&](size_t At) {
      if (!S.Young.test(At))
        AllYoung = false;
    });
    D.TargetYoung = AllYoung;
  }
  if (!modeA() || !Arr.isRefs() || !Start.isInt() ||
      Start.intValue().isTop() || !Cnt.isInt() || Cnt.intValue().isTop())
    return;
  bool Ok = true;
  Arr.refSet().forEach([&](size_t At) {
    RefId R = static_cast<RefId>(At);
    if (S.NL.test(R) ||
        !rangeInNullRange(S, R, Start.intValue(), Cnt.intValue()))
      Ok = false;
  });
  if (Ok) {
    D.Elide = true;
    D.Reason = ElisionReason::PreNullArrayElement;
  }
}

std::string BarrierAnalyzer::dumpState(const AnalysisState &S) const {
  std::string Out;
  auto Value = [&](const AbstractValue &V) -> std::string {
    switch (V.kind()) {
    case AbstractValue::Kind::Bottom:
      return "_|_";
    case AbstractValue::Kind::Conflict:
      return "conflict";
    case AbstractValue::Kind::Int:
      return V.intValue().str();
    case AbstractValue::Kind::Refs: {
      if (V.isDefinitelyNull())
        return "{null}";
      std::string R = "{";
      bool First = true;
      V.refSet().forEach([&](size_t Ref) {
        if (!First)
          R += ", ";
        First = false;
        R += Refs.refName(static_cast<RefId>(Ref));
      });
      return R + "}";
    }
    }
    return "?";
  };
  auto FieldName = [&](uint32_t F) -> std::string {
    if (F >= AnalysisState::ElemsFieldBase)
      return "elems";
    return P.fieldDecl(static_cast<FieldId>(F)).Name;
  };

  Out += "  rho: ";
  for (size_t L = 0; L != S.Locals.size(); ++L) {
    if (S.Locals[L].isBottom())
      continue;
    Out += "local" + std::to_string(L) + "=" + Value(S.Locals[L]) + " ";
  }
  Out += "\n  NL: {";
  bool First = true;
  S.NL.forEach([&](size_t R) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Refs.refName(static_cast<RefId>(R));
  });
  Out += "}\n  sigma: ";
  for (const auto &[Key, Val] : S.Store)
    Out += "(" + Refs.refName(Key.Ref) + "." + FieldName(Key.Field) +
           ")=" + Value(Val) + " ";
  if (!S.Len.empty()) {
    Out += "\n  Len: ";
    for (const auto &[R, L] : S.Len)
      Out += Refs.refName(R) + "=" + L.str() + " ";
  }
  if (!S.NR.empty()) {
    Out += "\n  NR: ";
    for (const auto &[R, NR] : S.NR)
      Out += Refs.refName(R) + "=" + NR.str() + " ";
  }
  return Out;
}

void BarrierAnalyzer::transfer(AnalysisState &S, uint32_t InstrIdx) {
  const Instruction &Ins = M.Instructions[InstrIdx];
  switch (Ins.Op) {
  case Opcode::IConst:
    pushInt(S, IntVal::constant(Ins.A));
    return;
  case Opcode::AConstNull:
    pushRef(S, nullRef());
    return;
  case Opcode::ILoad:
    S.push(S.Locals[static_cast<uint32_t>(Ins.A)]);
    return;
  case Opcode::ALoad: {
    AbstractValue V = S.Locals[static_cast<uint32_t>(Ins.A)];
    V.setSrcLocal(static_cast<uint32_t>(Ins.A));
    pushRef(S, std::move(V));
    return;
  }
  case Opcode::IStore: {
    AbstractValue V = S.popValue();
    V.clearSrcLocal();
    S.Locals[static_cast<uint32_t>(Ins.A)] = std::move(V);
    return;
  }
  case Opcode::AStore: {
    AbstractValue V = S.popValue();
    uint32_t L = static_cast<uint32_t>(Ins.A);
    if (nosOn()) {
      // The binding of local L changes: tags anchored at L go stale,
      // including any carried by the stored value itself.
      nos::onLocalReassigned(S, L);
      V.dropNosTagsForBase(L);
    }
    V.clearSrcLocal();
    S.Locals[L] = std::move(V);
    return;
  }
  case Opcode::IInc: {
    AbstractValue &V = S.Locals[static_cast<uint32_t>(Ins.A)];
    if (V.isInt())
      V = AbstractValue::intVal(mkInt(V.intValue().addConstant(Ins.B)));
    else
      V = AbstractValue::intVal(IntVal::top());
    return;
  }
  case Opcode::Dup:
    S.push(S.top());
    return;
  case Opcode::Pop:
    S.popValue();
    return;
  case Opcode::Swap: {
    AbstractValue A = S.popValue();
    AbstractValue B = S.popValue();
    S.push(std::move(A));
    S.push(std::move(B));
    return;
  }
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::IDiv:
  case Opcode::IRem: {
    AbstractValue Rhs = S.popValue();
    AbstractValue Lhs = S.popValue();
    IntVal Out = IntVal::top();
    if (Lhs.isInt() && Rhs.isInt()) {
      const IntVal &A = Lhs.intValue(), &B = Rhs.intValue();
      switch (Ins.Op) {
      case Opcode::IAdd:
        Out = A + B;
        break;
      case Opcode::ISub:
        Out = A - B;
        break;
      case Opcode::IMul:
        Out = IntVal::mul(A, B);
        break;
      default: // IDiv/IRem: no symbolic division
        break;
      }
    }
    pushInt(S, std::move(Out));
    return;
  }
  case Opcode::INeg: {
    AbstractValue V = S.popValue();
    pushInt(S, V.isInt() ? V.intValue().negate() : IntVal::top());
    return;
  }
  case Opcode::GetField: {
    FieldId F = static_cast<FieldId>(Ins.A);
    JType Ty = P.fieldDecl(F).Type;
    AbstractValue Obj = S.popValue();
    AbstractValue Out = lookupJoin(S, Obj, F, Ty);
    if (Ty == JType::Int) {
      pushInt(S, Out.isInt() ? Out.intValue() : IntVal::top());
      return;
    }
    if (nosOn() && Obj.srcLocal() != InvalidId)
      Out.addNosTag(NosTag{Obj.srcLocal(), F, /*IsEq=*/true});
    pushRef(S, std::move(Out));
    return;
  }
  case Opcode::PutField: {
    FieldId F = static_cast<FieldId>(Ins.A);
    JType Ty = P.fieldDecl(F).Type;
    AbstractValue Val = S.popValue();
    AbstractValue Obj = S.popValue();
    if (Judging && Ty == JType::Ref)
      judgePutField(S, Obj, Val, F, InstrIdx);
    if (Ty == JType::Ref)
      allNonTLCond(S, Obj, Val);
    if (Obj.isRefs()) {
      const BitSet &Targets = Obj.refSet();
      bool Strong = Targets.count() == 1 &&
                    Refs.uniqueInContext(
                        static_cast<RefId>(Targets.firstSetBit()),
                        M.IsConstructor);
      Val.clearSrcLocal();
      Val.clearNosTags();
      if (Strong) {
        S.Store[StoreKey{static_cast<RefId>(Targets.firstSetBit()), F}] = Val;
      } else {
        Targets.forEach([&](size_t Ot) {
          StoreKey Key{static_cast<RefId>(Ot), F};
          auto It = S.Store.find(Key);
          if (It == S.Store.end())
            S.Store.emplace(Key, Val);
          else
            It->second.mergeFrom(Val, simpleIntMerge);
        });
      }
    }
    if (nosOn() && Ty == JType::Ref)
      nos::onFieldWritten(S, F);
    return;
  }
  case Opcode::GetStatic: {
    JType Ty = P.staticDecl(static_cast<StaticFieldId>(Ins.A)).Type;
    if (Ty == JType::Ref)
      pushRef(S, globalRef());
    else
      pushInt(S, IntVal::top());
    return;
  }
  case Opcode::PutStatic: {
    AbstractValue Val = S.popValue();
    // Reference values stored into static variables escape, along with
    // everything reachable from them (Section 2.4).
    if (Val.isRefs())
      allNonTL(S, Val.refSet());
    return;
  }
  case Opcode::NewInstance: {
    uint32_t Site = Refs.siteOfInstr(InstrIdx);
    assert(Site != InvalidId && "allocation without a site");
    ClassId C = static_cast<ClassId>(Ins.A);
    reallocate(S, Site, &P.classDecl(C).Fields, /*FreshElems=*/false,
               /*NewLen=*/nullptr, /*NewNR=*/nullptr);
    // Generational: allocation is a potential minor-GC point (the nursery
    // slow path collects), so every prior young proof dies; the fresh
    // object itself is young.
    S.Young.clear();
    S.Young.set(Refs.siteA(Site));
    pushRef(S, singleRef(Refs.siteA(Site)));
    return;
  }
  case Opcode::NewRefArray:
  case Opcode::NewIntArray: {
    AbstractValue N = S.popValue();
    uint32_t Site = Refs.siteOfInstr(InstrIdx);
    assert(Site != InvalidId && "allocation without a site");
    const bool IsRef = Ins.Op == Opcode::NewRefArray;
    std::optional<IntVal> NewLen;
    std::optional<IntRange> NewNR;
    if (modeA()) {
      NewLen = N.isInt() ? N.intValue() : IntVal::top();
      if (IsRef)
        // NR[R_A] <- [0 .. n-1] (Section 3.3); unusable when the length
        // is unknown.
        NewNR = NewLen->isTop()
                    ? IntRange::empty()
                    : IntRange::full(IntVal::constant(0),
                                     NewLen->addConstant(-1));
    }
    reallocate(S, Site, /*ClassFields=*/nullptr, /*FreshElems=*/IsRef,
               NewLen ? &*NewLen : nullptr, NewNR ? &*NewNR : nullptr);
    S.Young.clear();
    S.Young.set(Refs.siteA(Site));
    pushRef(S, singleRef(Refs.siteA(Site)));
    return;
  }
  case Opcode::AALoad: {
    S.popValue(); // index
    AbstractValue Arr = S.popValue();
    pushRef(S,
            lookupJoin(S, Arr, AnalysisState::ElemsFieldBase, JType::Ref));
    return;
  }
  case Opcode::AAStore: {
    AbstractValue Val = S.popValue();
    AbstractValue Ind = S.popValue();
    AbstractValue Arr = S.popValue();
    if (Judging)
      judgeAAStore(S, Arr, Ind, InstrIdx);
    allNonTLCond(S, Arr, Val);
    if (Arr.isRefs()) {
      Val.clearSrcLocal();
      Val.clearNosTags();
      // Arrays always take weak updates (Section 2.4).
      Arr.refSet().forEach([&](size_t At) {
        StoreKey Key{static_cast<RefId>(At), AnalysisState::ElemsFieldBase};
        auto It = S.Store.find(Key);
        if (It == S.Store.end())
          S.Store.emplace(Key, Val);
        else
          It->second.mergeFrom(Val, simpleIntMerge);
      });
      if (modeA()) {
        IntVal IndV = Ind.isInt() ? Ind.intValue() : IntVal::top();
        Arr.refSet().forEach([&](size_t At) {
          auto It = S.NR.find(static_cast<RefId>(At));
          if (It == S.NR.end())
            return;
          It->second = Cfg.EnableContract ? It->second.contract(IndV)
                                          : IntRange::empty();
        });
      }
    }
    return;
  }
  case Opcode::ArrayFill: {
    AbstractValue Cnt = S.popValue();
    AbstractValue Start = S.popValue();
    AbstractValue Val = S.popValue();
    AbstractValue Arr = S.popValue();
    if (Judging)
      judgeRangeStore(S, Arr, Start, Cnt, InstrIdx);
    rangeStoreEffect(S, Arr, std::move(Val), Start, Cnt);
    return;
  }
  case Opcode::ArrayCopy: {
    AbstractValue Cnt = S.popValue();
    AbstractValue DstPos = S.popValue();
    AbstractValue Dst = S.popValue();
    S.popValue(); // source position: no abstract effect
    AbstractValue Src = S.popValue();
    if (Judging)
      judgeRangeStore(S, Dst, DstPos, Cnt, InstrIdx);
    // The stored values are whatever the source's elements may hold.
    AbstractValue Vals =
        lookupJoin(S, Src, AnalysisState::ElemsFieldBase, JType::Ref);
    rangeStoreEffect(S, Dst, std::move(Vals), DstPos, Cnt);
    return;
  }
  case Opcode::IALoad:
    S.popValue();
    S.popValue();
    pushInt(S, IntVal::top());
    return;
  case Opcode::IAStore:
    S.popValue();
    S.popValue();
    S.popValue();
    return;
  case Opcode::ArrayLength: {
    AbstractValue Arr = S.popValue();
    IntVal Out = IntVal::top();
    if (modeA() && Arr.isRefs() && !Arr.refSet().empty()) {
      bool First = true;
      Arr.refSet().forEach([&](size_t At) {
        IntVal L = S.lenOf(static_cast<RefId>(At));
        if (First) {
          Out = L;
          First = false;
        } else {
          Out = simpleIntMerge(Out, L);
        }
      });
    }
    pushInt(S, std::move(Out));
    return;
  }
  case Opcode::Invoke: {
    MethodId CalleeId = static_cast<MethodId>(Ins.A);
    const Method &Callee = P.method(CalleeId);
    // A pure-reader callee (see computePureReaders) cannot publish its
    // arguments, write any field, or hand back an alias, so the call is a
    // no-op for escape, sigma, and null-or-same state.
    bool Pure = CalleeId < PureReaders.size() && PureReaders[CalleeId];
    // Otherwise, passing a reference as an argument may cause it to
    // escape: nAllNonTL over the argument vector (Section 2.4).
    for (uint32_t AI = Callee.numArgs(); AI-- > 0;) {
      AbstractValue Arg = S.popValue();
      if (!Pure && Arg.isRefs())
        allNonTL(S, Arg.refSet());
    }
    if (nosOn() && !Pure)
      nos::onCall(S);
    // Any callee (pure readers included) may allocate and hence trigger a
    // minor GC that promotes everything currently young.
    S.Young.clear();
    if (Callee.ReturnType) {
      if (*Callee.ReturnType == JType::Ref)
        pushRef(S, globalRef());
      else
        pushInt(S, IntVal::top());
    }
    return;
  }
  case Opcode::Goto:
  case Opcode::RearrangeEnter:
  case Opcode::RearrangeEnterDyn:
  case Opcode::RearrangeExit:
    // The Section 4.3 protocol markers only read; no abstract effect.
    return;
  case Opcode::IfEq:
  case Opcode::IfNe:
  case Opcode::IfLt:
  case Opcode::IfGe:
  case Opcode::IfGt:
  case Opcode::IfLe:
  case Opcode::IfNull:
  case Opcode::IfNonNull:
    S.popValue();
    return;
  case Opcode::IfICmpEq:
  case Opcode::IfICmpNe:
  case Opcode::IfICmpLt:
  case Opcode::IfICmpGe:
  case Opcode::IfICmpGt:
  case Opcode::IfICmpLe:
  case Opcode::IfACmpEq:
  case Opcode::IfACmpNe:
    S.popValue();
    S.popValue();
    return;
  case Opcode::Ret:
    return;
  case Opcode::IReturn:
  case Opcode::AReturn:
    S.popValue();
    return;
  }
  assert(false && "unknown opcode in transfer");
}

void BarrierAnalyzer::rangeStoreEffect(AnalysisState &S,
                                       const AbstractValue &Arr,
                                       AbstractValue Val,
                                       const AbstractValue &Start,
                                       const AbstractValue &Cnt) {
  allNonTLCond(S, Arr, Val);
  if (!Arr.isRefs())
    return;
  Val.clearSrcLocal();
  Val.clearNosTags();
  // Arrays always take weak updates (Section 2.4).
  Arr.refSet().forEach([&](size_t At) {
    StoreKey Key{static_cast<RefId>(At), AnalysisState::ElemsFieldBase};
    auto It = S.Store.find(Key);
    if (It == S.Store.end())
      S.Store.emplace(Key, Val);
    else
      It->second.mergeFrom(Val, simpleIntMerge);
  });
  if (modeA()) {
    IntVal StartV = Start.isInt() ? Start.intValue() : IntVal::top();
    IntVal CntV = Cnt.isInt() ? Cnt.intValue() : IntVal::top();
    Arr.refSet().forEach([&](size_t At) {
      auto It = S.NR.find(static_cast<RefId>(At));
      if (It == S.NR.end())
        return;
      It->second = Cfg.EnableContract
                       ? It->second.contractRange(StartV, CntV)
                       : IntRange::empty();
    });
  }
}

template <typename FnT>
void BarrierAnalyzer::processBlock(uint32_t BI, AnalysisState &S,
                                   FnT EmitOut) {
  const BasicBlock &B = CFG.block(BI);
  // A safepoint poll at the block leader may run a minor GC before any
  // instruction of the block executes.
  if (PollKill[B.Begin])
    S.Young.clear();
  for (uint32_t I = B.Begin; I + 1 < B.End; ++I)
    transfer(S, I);
  uint32_t LastIdx = B.End - 1;
  const Instruction &Last = M.Instructions[LastIdx];

  // Null-check branch refinement for the null-or-same extension: on the
  // edge where a value is known null, its Eq tags become field-is-null
  // facts (see NullOrSame.h).
  if (nosOn() &&
      (Last.Op == Opcode::IfNull || Last.Op == Opcode::IfNonNull)) {
    AbstractValue V = S.popValue();
    AnalysisState Taken = S;
    if (Last.Op == Opcode::IfNull)
      nos::onKnownNull(Taken, V); // taken edge: value null
    else
      nos::onKnownNull(S, V); // fall-through edge: value null
    EmitOut(0, Taken, /*LastUse=*/true);
    EmitOut(1, S, /*LastUse=*/true);
    return;
  }

  transfer(S, LastIdx);
  for (size_t Slot = 0, E = B.Succs.size(); Slot != E; ++Slot)
    EmitOut(Slot, S, /*LastUse=*/Slot + 1 == E);
}

AnalysisResult BarrierAnalyzer::run() {
  Stopwatch Timer;
  const uint32_t N = static_cast<uint32_t>(M.Instructions.size());
  Result.Decisions.resize(N);

  // Pre-scan: classify barrier sites. Ref-typed putstatic is a barrier
  // site that is never elided (no intra-procedural facts survive about
  // global state).
  for (uint32_t I = 0; I != N; ++I) {
    const Instruction &Ins = M.Instructions[I];
    BarrierDecision &D = Result.Decisions[I];
    if (Ins.Op == Opcode::PutField &&
        P.fieldDecl(static_cast<FieldId>(Ins.A)).Type == JType::Ref)
      D.IsBarrierSite = true;
    else if (Ins.Op == Opcode::AAStore || Ins.Op == Opcode::ArrayFill ||
             Ins.Op == Opcode::ArrayCopy)
      D.IsBarrierSite = D.IsArraySite = true;
    else if (Ins.Op == Opcode::PutStatic &&
             P.staticDecl(static_cast<StaticFieldId>(Ins.A)).Type ==
                 JType::Ref)
      D.IsBarrierSite = true;
  }

  if (Cfg.Mode != AnalysisMode::None) {
    // Fixpoint over basic blocks (Section 2: "analyzes basic blocks with
    // modified start states, propagating changes to successor blocks,
    // until a fixed point is reached").
    std::vector<std::optional<AnalysisState>> BlockIn(CFG.numBlocks());
    std::vector<uint32_t> MergeCount(CFG.numBlocks(), 0);
    std::vector<bool> InList(CFG.numBlocks(), false);

    // The worklist drains in reverse post-order by default: the heap is
    // keyed by RPO index, so a loop body's changes flow back to the head
    // before anything downstream of the loop is revisited. Only reachable
    // blocks are ever enqueued (the entry, and successors of reachable
    // blocks), so every enqueued block has an RPO index.
    const std::vector<uint32_t> &RPO = CFG.reversePostOrder();
    const bool UseRpo = Cfg.Order == WorklistOrder::RPO;
    std::vector<uint32_t> RpoIndex(CFG.numBlocks(), 0);
    for (uint32_t I = 0, E = static_cast<uint32_t>(RPO.size()); I != E; ++I)
      RpoIndex[RPO[I]] = I;
    std::priority_queue<uint32_t, std::vector<uint32_t>,
                        std::greater<uint32_t>>
        Heap;
    std::deque<uint32_t> Fifo;
    auto Push = [&](uint32_t BI) {
      if (InList[BI])
        return;
      InList[BI] = true;
      if (UseRpo)
        Heap.push(RpoIndex[BI]);
      else
        Fifo.push_back(BI);
    };
    auto Pop = [&]() {
      uint32_t BI;
      if (UseRpo) {
        BI = RPO[Heap.top()];
        Heap.pop();
      } else {
        BI = Fifo.front();
        Fifo.pop_front();
      }
      InList[BI] = false;
      return BI;
    };

    BlockIn[0] = initialState();
    Push(0);

    while (UseRpo ? !Heap.empty() : !Fifo.empty()) {
      uint32_t BI = Pop();
      ++Result.BlockVisits;

      Scratch = *BlockIn[BI];
      processBlock(BI, Scratch, [&](size_t Slot, AnalysisState &Out,
                                    bool LastUse) {
        uint32_t Succ = CFG.block(BI).Succs[Slot];
        bool Changed;
        if (!BlockIn[Succ]) {
          if (LastUse)
            BlockIn[Succ] = std::move(Out);
          else
            BlockIn[Succ] = Out;
          Changed = true;
        } else if (CFG.block(Succ).Preds.size() == 1) {
          // A single-predecessor block needs no join: its in-state is
          // exactly the predecessor's out-state. Replacing (rather than
          // merging) keeps loop-body states expressed in the head's
          // variable unknowns instead of smearing them against stale
          // first-iteration constants.
          Changed = *BlockIn[Succ] != Out;
          if (Changed) {
            if (LastUse)
              *BlockIn[Succ] = std::move(Out);
            else
              *BlockIn[Succ] = Out;
          }
        } else {
          // Widening counts merges into the join point, not pops of it: a
          // head that keeps receiving changed states from one back edge
          // widens after a bounded number of joins no matter how the
          // worklist interleaves its pops.
          ++MergeCount[Succ];
          StateMerger Merger(Vars,
                             /*Widen=*/MergeCount[Succ] > Cfg.MaxBlockVisits);
          Changed = Merger.merge(*BlockIn[Succ], Out);
        }
        if (Changed)
          Push(Succ);
      });
    }

    // Judgment pass: "the last such judgment (at the fixed point of the
    // analysis) is correct" (Section 2.4). One pass over the final
    // in-states records per-site verdicts.
    Judging = true;
    for (uint32_t BI : CFG.reversePostOrder())
      if (BlockIn[BI]) {
        Scratch = *BlockIn[BI];
        processBlock(BI, Scratch, [](size_t, AnalysisState &, bool) {});
      }
    Judging = false;

    if (Cfg.CaptureStates) {
      for (uint32_t BI = 0; BI != CFG.numBlocks(); ++BI) {
        if (!BlockIn[BI])
          continue;
        const BasicBlock &B = CFG.block(BI);
        Result.BlockStateDumps.push_back(
            "block " + std::to_string(BI) + " [" +
            std::to_string(B.Begin) + ".." + std::to_string(B.End) +
            ") in-state:\n" + dumpState(*BlockIn[BI]));
      }
    }
  }

  for (const BarrierDecision &D : Result.Decisions) {
    if (!D.IsBarrierSite)
      continue;
    ++Result.NumSites;
    if (D.IsArraySite)
      ++Result.NumArraySites;
    if (D.TargetYoung)
      ++Result.NumTargetYoung;
    if (D.Elide) {
      ++Result.NumElided;
      if (D.IsArraySite)
        ++Result.NumElidedArray;
      if (D.Reason == ElisionReason::NullOrSame)
        ++Result.NumElidedNullOrSame;
    }
  }
  Result.AnalysisTimeUs = Timer.elapsedUs();
  return Result;
}

} // namespace

AnalysisResult satb::analyzeBarriers(const Program &P, const Method &M,
                                     const AnalysisConfig &Cfg) {
  return BarrierAnalyzer(P, M, Cfg).run();
}

SpeculativeFacts satb::injectSpeculativeFacts(
    const AnalysisResult &R, const std::vector<bool> &NullAlways,
    const std::vector<bool> &YoungAlways, bool ApplyElision) {
  size_t N = R.Decisions.size();
  SpeculativeFacts F;
  F.NullSpec.assign(N, false);
  F.YoungSpec.assign(N, false);
  for (size_t PC = 0; PC != N; ++PC) {
    const BarrierDecision &D = R.Decisions[PC];
    if (!D.IsBarrierSite)
      continue;
    if (PC < NullAlways.size() && NullAlways[PC] &&
        !(ApplyElision && D.Elide))
      F.NullSpec[PC] = true;
    if (PC < YoungAlways.size() && YoungAlways[PC] &&
        !(ApplyElision && D.TargetYoung))
      F.YoungSpec[PC] = true;
  }
  return F;
}
