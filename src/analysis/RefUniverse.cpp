//===- analysis/RefUniverse.cpp -------------------------------------------===//

#include "analysis/RefUniverse.h"

#include <cstdio>

using namespace satb;

RefUniverse::RefUniverse(const Method &M, bool TwoNamesPerSite)
    : TwoNames(TwoNamesPerSite) {
  // RefId 0 is GlobalRef.
  uint32_t Next = 1;
  ArgRefs.reserve(M.numArgs());
  for (uint32_t A = 0, E = M.numArgs(); A != E; ++A)
    ArgRefs.push_back(M.ArgTypes[A] == JType::Ref ? Next++ : InvalidId);

  FirstSiteRef = Next;
  InstrToSite.assign(M.Instructions.size(), InvalidId);
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.Instructions.size());
       I != E; ++I) {
    const Instruction &Ins = M.Instructions[I];
    if (Ins.Op != Opcode::NewInstance && Ins.Op != Opcode::NewRefArray &&
        Ins.Op != Opcode::NewIntArray)
      continue;
    InstrToSite[I] = static_cast<uint32_t>(Sites.size());
    AllocSite S;
    S.InstrIdx = I;
    S.Kind = Ins.Op;
    if (Ins.Op == Opcode::NewInstance)
      S.Class = static_cast<ClassId>(Ins.A);
    Sites.push_back(S);
  }
  NumRefs = FirstSiteRef + numSites() * (TwoNames ? 2 : 1);
}

bool RefUniverse::isRefArrayRef(RefId R) const {
  uint32_t Site = siteOfRef(R);
  if (Site == InvalidId) {
    // GlobalRef and argument refs may denote anything, including arrays.
    return true;
  }
  return Sites[Site].Kind == Opcode::NewRefArray;
}

bool RefUniverse::isArrayRef(RefId R) const {
  uint32_t Site = siteOfRef(R);
  if (Site == InvalidId)
    return true;
  return Sites[Site].Kind == Opcode::NewRefArray ||
         Sites[Site].Kind == Opcode::NewIntArray;
}

std::string RefUniverse::refName(RefId R) const {
  if (R == GlobalRef)
    return "Global";
  if (R < FirstSiteRef) {
    for (uint32_t A = 0; A != ArgRefs.size(); ++A)
      if (ArgRefs[A] == R) {
        char Buf[16];
        std::snprintf(Buf, sizeof(Buf), "Arg%u", A);
        return Buf;
      }
    return "<bad-arg-ref>";
  }
  uint32_t Site = siteOfRef(R);
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "Site%u/%s", Site,
                !TwoNames ? "AB" : (isSiteA(R) ? "A" : "B"));
  return Buf;
}
