//===- analysis/IntVal.h - Symbolic linear integer values ------*- C++ -*-===//
///
/// \file
/// The IntVal abstract integer domain of Section 3.2: "a linear combination
/// of integer terms ... at most one term in a variable unknown, one
/// constant term, and zero or more terms in constant unknowns:
/// a*u + k0*c0 + ... + kn*cn + b". Constant unknowns (c_i) have the same
/// value in all states (created for integer parameters and argument-array
/// lengths, Section 3.4); variable unknowns (v_i) are created by the state
/// merge of Figure 1 and may differ between states. Symbolic arithmetic
/// degrades to Top when it leaves the representable form.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_INTVAL_H
#define SATB_ANALYSIS_INTVAL_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace satb {

using VarId = uint32_t;
using ConstUnknownId = uint32_t;
constexpr uint32_t NoVar = ~uint32_t(0);

/// A symbolic integer: Top, or VarCoeff*Var + sum(K_i * c_i) + Const.
class IntVal {
public:
  /// Default-constructed IntVals are the constant 0.
  IntVal() = default;

  static IntVal top() {
    IntVal V;
    V.Top = true;
    return V;
  }
  static IntVal constant(int64_t C) {
    IntVal V;
    V.Const = C;
    return V;
  }
  static IntVal constUnknown(ConstUnknownId Id) {
    IntVal V;
    V.Unknowns.emplace_back(Id, 1);
    return V;
  }
  static IntVal variable(VarId Id) {
    IntVal V;
    V.Var = Id;
    V.VarCoeff = 1;
    return V;
  }

  bool isTop() const { return Top; }
  bool hasVarTerm() const { return !Top && VarCoeff != 0; }
  VarId var() const { return Var; }
  int64_t varCoeff() const { return Top ? 0 : VarCoeff; }
  int64_t constTerm() const { return Const; }
  const std::vector<std::pair<ConstUnknownId, int64_t>> &unknownTerms() const {
    return Unknowns;
  }

  /// int_const(v): a literal integer with no symbolic terms at all.
  bool isPureConstant() const {
    return !Top && VarCoeff == 0 && Unknowns.empty();
  }

  /// \returns true if the value has no variable-unknown term (it may still
  /// contain constant unknowns).
  bool isVarFree() const { return !Top && VarCoeff == 0; }

  friend IntVal operator+(const IntVal &A, const IntVal &B);
  friend IntVal operator-(const IntVal &A, const IntVal &B);
  IntVal negate() const;
  IntVal addConstant(int64_t C) const;
  IntVal mulConstant(int64_t K) const;
  /// General multiply: exact when either side is a pure constant, Top
  /// otherwise.
  static IntVal mul(const IntVal &A, const IntVal &B);

  bool operator==(const IntVal &O) const {
    if (Top || O.Top)
      return Top == O.Top;
    return VarCoeff == O.VarCoeff && (VarCoeff == 0 || Var == O.Var) &&
           Const == O.Const && Unknowns == O.Unknowns;
  }
  bool operator!=(const IntVal &O) const { return !(*this == O); }

  /// \returns this value with \p V replaced by \p Replacement (used by the
  /// Figure 1 merge to validate substitutions). Top if the result leaves
  /// the representable form.
  IntVal substituteVar(VarId V, const IntVal &Replacement) const;

  /// \returns a debug rendering like "2*v1 + 3*c0 - 1" or "top".
  std::string str() const;

private:
  void canonicalize();

  bool Top = false;
  VarId Var = NoVar;
  int64_t VarCoeff = 0;
  /// Sorted by ConstUnknownId; coefficients never zero.
  std::vector<std::pair<ConstUnknownId, int64_t>> Unknowns;
  int64_t Const = 0;
};

IntVal operator+(const IntVal &A, const IntVal &B);
IntVal operator-(const IntVal &A, const IntVal &B);

/// Registry of constant unknowns for one analysis run, remembering which
/// are known non-negative (argument-array lengths are; plain int arguments
/// are not).
class ConstUnknownRegistry {
public:
  ConstUnknownId create(bool NonNegative) {
    NonNeg.push_back(NonNegative);
    return static_cast<ConstUnknownId>(NonNeg.size() - 1);
  }
  bool isNonNegative(ConstUnknownId Id) const {
    return Id < NonNeg.size() && NonNeg[Id];
  }

private:
  std::vector<bool> NonNeg;
};

/// \returns true when \p V >= 0 is provable: V is var-free, its literal
/// constant part is >= 0, and every constant-unknown term has a
/// non-negative coefficient on an unknown known non-negative.
bool provablyNonNegative(const IntVal &V, const ConstUnknownRegistry &Reg);

} // namespace satb

#endif // SATB_ANALYSIS_INTVAL_H
