//===- analysis/Rearrange.h - Section 4.3 array rearrangement --*- C++ -*-===//
///
/// \file
/// The optimistic array-rearrangement protocol the paper proposes in
/// Section 4.3: loops that permute the elements of an object array —
/// jbb's "delete a single element of an object array by moving all higher
/// elements down by one index" is the target idiom here — overwrite only
/// one reference value when taken as a whole. If the loop ran atomically
/// with respect to the collector's tracing of the array, only that value
/// would need to be logged.
///
/// The paper's proposal: "devote bits in the header of an object array to
/// indicate the tracing state of the array (untraced, tracing, traced)
/// ... generate code to log the overwritten a[index] value and read the
/// tracing state before and after the loop. If the states indicate that
/// the marker may have done any tracing of the array concurrently with
/// the loop, then the mutator places the entire array on a special
/// retrace list."
///
/// We implement exactly that: recognizeMoveDownLoops() pattern-matches the
/// post-inlining bytecode for canonical move-down delete loops
///
///   for (j = K; j < arr.length - 1; j++)  arr[j] = arr[j+1];
///
/// and rewrites them to
///
///   rearrange_enter arr, K      // log arr[K] (the dropped value), read
///                               // the tracing state
///   for (...) arr[j] = arr[j+1] // stores skip the SATB log
///   rearrange_exit arr          // re-read the state; retrace on overlap
///
/// The transformed stores are sound because every other pre-value remains
/// reachable through the array itself (the move-down copies arr[j] into
/// arr[j-1] before arr[j] is overwritten); the runtime protocol in
/// SatbMarker/Interpreter handles marker overlap and cycles that begin
/// mid-loop (stores fall back to normal logging unless an enter was seen
/// in the current cycle).
///
/// Like the null-or-same extension, unsynchronized mutator/mutator writes
/// invalidate the reasoning (Section 4.3's closing caveat), so the
/// transformation is gated behind EnableArrayRearrange and documented as
/// single-mutator / lock-disciplined.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_REARRANGE_H
#define SATB_ANALYSIS_REARRANGE_H

#include "bytecode/Program.h"

#include <vector>

namespace satb {

struct RearrangeResult {
  Method Transformed;
  uint32_t LoopsTransformed = 0;
  /// Per transformed-body instruction: true for aastores that use the
  /// rearrangement protocol instead of the SATB log.
  std::vector<bool> ProtocolStores;
};

/// Recognizes canonical move-down delete loops *and* the straight-line
/// two-element swap idiom (db's sort: "part of an idiom that swaps two
/// elements in an array ... we could eliminate both barriers in the swap
/// idiom with this approach") and inserts the enter/exit protocol
/// instructions. For a swap, enter logs the first-overwritten element
/// dynamically (RearrangeEnterDyn): the second element reaches its new
/// slot before its old slot is overwritten, so it is present in the array
/// at every instant, and the first is covered by the log. \returns the
/// rewritten body (the original body, untouched, when nothing matches).
RearrangeResult recognizeMoveDownLoops(const Method &M);

} // namespace satb

#endif // SATB_ANALYSIS_REARRANGE_H
