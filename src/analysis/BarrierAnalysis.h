//===- analysis/BarrierAnalysis.h - SATB barrier elision -------*- C++ -*-===//
///
/// \file
/// The paper's core contribution: flow-sensitive, intra-procedural abstract
/// interpretation proving that reference stores are pre-null (guaranteed to
/// overwrite null) so their SATB concurrent-marking write barriers may be
/// omitted.
///
///   - Mode FieldOnly implements Section 2 (object field writes);
///   - Mode FieldAndArray adds Section 3 (array element writes);
///   - the EnableNullOrSame flag adds the Section 4.3 extension;
///   - TwoNamesPerSite / EnableContract exist for ablation benches.
///
/// The elision judgment for `putfield f` with pre-state
/// <rho, sigma, NL, [stk:o, v]> is the paper's: forall ot in o:
/// ot not in NL and sigma(ot, f) = {} (Section 2.4 end). For `aastore` the
/// judgment requires the index provably inside the array's uninitialized
/// null range (Section 3); the index's upper side may also be discharged by
/// the runtime bounds check when the range reaches the array's last index.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_BARRIERANALYSIS_H
#define SATB_ANALYSIS_BARRIERANALYSIS_H

#include "bytecode/Program.h"

#include <string>
#include <vector>

namespace satb {

/// Which analyses run. Matches Figure 2's B / F / A configurations.
enum class AnalysisMode : uint8_t {
  None,         ///< B: no analysis, every barrier stays
  FieldOnly,    ///< F: Section 2 field analysis
  FieldAndArray ///< A: field analysis + Section 3 array analysis
};

/// Fixpoint worklist discipline. RPO drains blocks in reverse post-order,
/// which on reducible CFGs propagates loop-body changes back to the head
/// before re-visiting everything downstream — a classic large reduction in
/// block visits versus FIFO. FIFO is kept for ablation and for the
/// engine-equivalence tests: elision decisions must not depend on the
/// iteration order, only the visit count may.
enum class WorklistOrder : uint8_t {
  RPO, ///< priority worklist keyed by reverse post-order index
  FIFO ///< the historical first-in-first-out deque
};

struct AnalysisConfig {
  AnalysisMode Mode = AnalysisMode::FieldAndArray;

  /// Fixpoint iteration order (see WorklistOrder).
  WorklistOrder Order = WorklistOrder::RPO;

  /// Section 4.3 null-or-same extension.
  bool EnableNullOrSame = false;
  /// Allow null-or-same elision on possibly-shared objects (the paper's
  /// inspection-based justification for synchronized code). Off by default.
  bool NosAssumeNoRaces = false;

  /// Ablation: two abstract references per allocation site (R_id/A most
  /// recent + R_id/B summary, Section 2.4). Off = one summary name per
  /// site, which forfeits strong update.
  bool TwoNamesPerSite = true;
  /// A first interprocedural step (the paper's Section 2.4 notes its lack
  /// of interprocedural techniques is detrimental; Section 6 calls for an
  /// integrated framework): calls to *pure readers* — callees that
  /// transitively perform no heap/static stores and return nothing
  /// reference-typed — neither escape their arguments nor invalidate
  /// null-or-same facts.
  bool UseCalleeSummaries = true;
  /// Ablation: the contract heuristic of Section 3.3. Off = any array
  /// store empties the null range.
  bool EnableContract = true;

  /// Capture a human-readable dump of every reachable block's fixpoint
  /// in-state into AnalysisResult::BlockStateDumps (debugging/teaching;
  /// see examples/paper_walkthrough.cpp).
  bool CaptureStates = false;

  /// Widening threshold: past this many *merges into* a block's in-state,
  /// integer merges stop creating variable unknowns and go to Top
  /// (termination backstop). Counting merges — not pops of the block —
  /// guarantees a join point that keeps changing widens after a bounded
  /// number of join operations regardless of iteration order.
  uint32_t MaxBlockVisits = 40;
  /// Cap on variable unknowns per analysis (termination backstop).
  uint32_t MaxVars = 512;
};

enum class ElisionReason : uint8_t {
  None,                ///< barrier stays
  DeadCode,            ///< store unreachable
  PreNullField,        ///< Section 2: field proven null before the write
  PreNullArrayElement, ///< Section 3: index inside the null range
  NullOrSame           ///< Section 4.3: overwrites null or rewrites same
};

/// Per-instruction verdict.
struct BarrierDecision {
  bool IsBarrierSite = false; ///< ref-typed putfield/aastore/putstatic
  bool IsArraySite = false;   ///< aastore
  bool Elide = false;
  /// Generational extension: every possible target of the store is proven
  /// *young* — allocated after the last potential GC point on every path —
  /// so the old-to-young remembered-set barrier is unnecessary (a young
  /// base object cannot hold the only old-to-young edge). Independent of
  /// Elide: the two compose into four barrier variants under
  /// BarrierMode::Generational. Never set for putstatic (statics are
  /// roots; no remembered-set barrier applies there at all).
  bool TargetYoung = false;
  ElisionReason Reason = ElisionReason::None;
};

struct AnalysisResult {
  std::vector<BarrierDecision> Decisions; ///< indexed by instruction

  // Static site counts over the analyzed body.
  uint32_t NumSites = 0;
  uint32_t NumArraySites = 0;
  uint32_t NumElided = 0;
  uint32_t NumElidedArray = 0;
  uint32_t NumElidedNullOrSame = 0;
  uint32_t NumTargetYoung = 0; ///< sites proven young-target (generational)

  // Analysis effort.
  uint32_t BlockVisits = 0;
  double AnalysisTimeUs = 0.0;

  /// One rendered fixpoint in-state per reachable block, in block order
  /// (only with AnalysisConfig::CaptureStates).
  std::vector<std::string> BlockStateDumps;
};

/// Runs the barrier-elision analysis on \p M (normally the post-inlining
/// body). \p M must verify against \p P; the compiler pipeline enforces
/// this. \p IsConstructorBody controls the special initial state for
/// constructors (Section 2.3).
AnalysisResult analyzeBarriers(const Program &P, const Method &M,
                               const AnalysisConfig &Cfg);

/// Per-PC speculation requests for one method — the runtime counterpart
/// of a BarrierDecision. Where the static analysis *proves* a store
/// pre-null, a profile can only *observe* it; the tiered engine turns
/// such observations into guarded elisions (DESIGN.md "Tiered
/// execution"). Indexed by original (compiled-body) PC.
struct SpeculativeFacts {
  std::vector<bool> NullSpec;  ///< elide marking barrier under Pre==null guard
  std::vector<bool> YoungSpec; ///< elide remset barrier under isYoung guard
  bool any() const {
    for (bool B : NullSpec)
      if (B)
        return true;
    for (bool B : YoungSpec)
      if (B)
        return true;
    return false;
  }
};

/// Folds observed per-site facts into speculation requests, validated
/// against the static decisions in \p R: only genuine barrier sites are
/// kept, and a fact the static proof already discharges (Elide /
/// TargetYoung with elision applied) is dropped — speculating there
/// could only add guard cost to an already-free site. \p NullAlways /
/// \p YoungAlways are the profile's verdicts per PC ("every observed
/// execution overwrote null" / "...had a young base").
SpeculativeFacts injectSpeculativeFacts(const AnalysisResult &R,
                                        const std::vector<bool> &NullAlways,
                                        const std::vector<bool> &YoungAlways,
                                        bool ApplyElision);

} // namespace satb

#endif // SATB_ANALYSIS_BARRIERANALYSIS_H
