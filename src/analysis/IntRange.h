//===- analysis/IntRange.h - Uninitialized array index ranges --*- C++ -*-===//
///
/// \file
/// The IntRange domain of Section 3.2, representing the subrange of an
/// array's valid indices known to contain null:
///
///   - Full [lo..hi]: a closed interval, used only immediately after
///     allocation (hi = length-1);
///   - From [lo..]: indices i with i >= lo (up to the array length);
///   - To [..hi]: indices i with i <= hi (down to 0);
///   - Empty []: no information — the top of the lattice ("smaller ranges
///     are larger in the lattice").
///
/// contract() implements the paper's heuristic: a store at either end of
/// the uninitialized range shrinks it by one; anything else loses all
/// information. That conservatism is also the overflow defense of Section
/// 3.6 (elements must be initialized in index order, so a wrapped index
/// traps before it can reach a previously initialized element).
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_INTRANGE_H
#define SATB_ANALYSIS_INTRANGE_H

#include "analysis/IntVal.h"

#include <cassert>

namespace satb {

class IntRange {
public:
  enum class Kind : uint8_t { Full, From, To, Empty };

  /// Default: the empty (no information) range.
  IntRange() : K(Kind::Empty) {}

  static IntRange empty() { return IntRange(); }
  static IntRange full(IntVal Lo, IntVal Hi) {
    IntRange R;
    R.K = Kind::Full;
    R.LoBound = std::move(Lo);
    R.HiBound = std::move(Hi);
    return R;
  }
  static IntRange from(IntVal Lo) {
    IntRange R;
    R.K = Kind::From;
    R.LoBound = std::move(Lo);
    return R;
  }
  static IntRange to(IntVal Hi) {
    IntRange R;
    R.K = Kind::To;
    R.HiBound = std::move(Hi);
    return R;
  }

  Kind kind() const { return K; }
  bool isEmpty() const { return K == Kind::Empty; }
  bool hasLo() const { return K == Kind::Full || K == Kind::From; }
  bool hasHi() const { return K == Kind::Full || K == Kind::To; }
  const IntVal &lo() const {
    assert(hasLo() && "range has no lower bound");
    return LoBound;
  }
  const IntVal &hi() const {
    assert(hasHi() && "range has no upper bound");
    return HiBound;
  }

  /// The contract heuristic of Section 3.3: shrink the null range after a
  /// store at index \p Ind; a store not provably at either end empties it.
  /// A bound that becomes Top also empties the range.
  IntRange contract(const IntVal &Ind) const;

  /// Range form of contract for the bulk-store bytecodes: a store covering
  /// [Start .. Start+Count) anchored at either end shrinks the range by
  /// Count; anything else loses all information. Sound for Count = 0 (the
  /// surviving range only ever excludes covered indices).
  IntRange contractRange(const IntVal &Start, const IntVal &Count) const;

  bool operator==(const IntRange &O) const {
    if (K != O.K)
      return false;
    if (hasLo() && LoBound != O.LoBound)
      return false;
    if (hasHi() && HiBound != O.HiBound)
      return false;
    return true;
  }
  bool operator!=(const IntRange &O) const { return !(*this == O); }

  /// \returns a debug rendering like "[v0..]", "[0..2*c0 - 1]", "[]".
  std::string str() const;

private:
  Kind K;
  IntVal LoBound;
  IntVal HiBound;
};

} // namespace satb

#endif // SATB_ANALYSIS_INTRANGE_H
