//===- analysis/IntVal.cpp ------------------------------------------------===//

#include "analysis/IntVal.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace satb;

void IntVal::canonicalize() {
  if (VarCoeff == 0)
    Var = NoVar;
  Unknowns.erase(std::remove_if(Unknowns.begin(), Unknowns.end(),
                                [](const auto &T) { return T.second == 0; }),
                 Unknowns.end());
}

IntVal satb::operator+(const IntVal &A, const IntVal &B) {
  if (A.Top || B.Top)
    return IntVal::top();
  IntVal R;
  // Variable terms: at most one variable unknown is representable.
  if (A.VarCoeff != 0 && B.VarCoeff != 0) {
    if (A.Var != B.Var)
      return IntVal::top();
    R.Var = A.Var;
    R.VarCoeff = A.VarCoeff + B.VarCoeff;
  } else if (A.VarCoeff != 0) {
    R.Var = A.Var;
    R.VarCoeff = A.VarCoeff;
  } else if (B.VarCoeff != 0) {
    R.Var = B.Var;
    R.VarCoeff = B.VarCoeff;
  }
  // Merge sorted constant-unknown term lists.
  size_t I = 0, J = 0;
  while (I < A.Unknowns.size() || J < B.Unknowns.size()) {
    if (J == B.Unknowns.size() ||
        (I < A.Unknowns.size() && A.Unknowns[I].first < B.Unknowns[J].first))
      R.Unknowns.push_back(A.Unknowns[I++]);
    else if (I == A.Unknowns.size() ||
             B.Unknowns[J].first < A.Unknowns[I].first)
      R.Unknowns.push_back(B.Unknowns[J++]);
    else {
      R.Unknowns.emplace_back(A.Unknowns[I].first,
                              A.Unknowns[I].second + B.Unknowns[J].second);
      ++I;
      ++J;
    }
  }
  R.Const = A.Const + B.Const;
  R.canonicalize();
  return R;
}

IntVal satb::operator-(const IntVal &A, const IntVal &B) {
  return A + B.negate();
}

IntVal IntVal::negate() const { return mulConstant(-1); }

IntVal IntVal::addConstant(int64_t C) const {
  if (Top)
    return top();
  IntVal R = *this;
  R.Const += C;
  return R;
}

IntVal IntVal::mulConstant(int64_t K) const {
  if (Top)
    return K == 0 ? constant(0) : top();
  IntVal R = *this;
  R.VarCoeff *= K;
  for (auto &T : R.Unknowns)
    T.second *= K;
  R.Const *= K;
  R.canonicalize();
  return R;
}

IntVal IntVal::mul(const IntVal &A, const IntVal &B) {
  if (A.isPureConstant())
    return B.mulConstant(A.Const);
  if (B.isPureConstant())
    return A.mulConstant(B.Const);
  return top();
}

IntVal IntVal::substituteVar(VarId V, const IntVal &Replacement) const {
  if (Top)
    return top();
  if (VarCoeff == 0 || Var != V)
    return *this;
  IntVal WithoutVar = *this;
  WithoutVar.Var = NoVar;
  WithoutVar.VarCoeff = 0;
  return WithoutVar + Replacement.mulConstant(VarCoeff);
}

std::string IntVal::str() const {
  if (Top)
    return "top";
  std::string Out;
  char Buf[48];
  auto Term = [&](int64_t Coeff, const char *Sym, uint32_t Id) {
    if (Coeff == 0)
      return;
    if (!Out.empty())
      Out += Coeff < 0 ? " - " : " + ";
    else if (Coeff < 0)
      Out += "-";
    int64_t Abs = Coeff < 0 ? -Coeff : Coeff;
    if (Abs != 1) {
      std::snprintf(Buf, sizeof(Buf), "%lld*", static_cast<long long>(Abs));
      Out += Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "%s%u", Sym, Id);
    Out += Buf;
  };
  Term(VarCoeff, "v", Var);
  for (const auto &T : Unknowns)
    Term(T.second, "c", T.first);
  if (Const != 0 || Out.empty()) {
    if (!Out.empty())
      Out += Const < 0 ? " - " : " + ";
    int64_t Abs = (Const < 0 && !Out.empty()) ? -Const : Const;
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(Abs));
    Out += Buf;
  }
  return Out;
}

bool satb::provablyNonNegative(const IntVal &V,
                               const ConstUnknownRegistry &Reg) {
  if (V.isTop() || V.hasVarTerm())
    return false;
  if (V.constTerm() < 0)
    return false;
  for (const auto &T : V.unknownTerms())
    if (T.second < 0 || !Reg.isNonNegative(T.first))
      return false;
  return true;
}
