//===- analysis/AbstractValue.cpp -----------------------------------------===//

#include "analysis/AbstractValue.h"

using namespace satb;

void AbstractValue::addNosTag(NosTag T) {
  auto It = std::lower_bound(Tags.begin(), Tags.end(), T);
  if (It != Tags.end() && It->BaseLocal == T.BaseLocal &&
      It->Field == T.Field) {
    It->IsEq |= T.IsEq;
    return;
  }
  Tags.insert(It, T);
}

void AbstractValue::dropNosTagsForField(FieldId F) {
  Tags.erase(std::remove_if(Tags.begin(), Tags.end(),
                            [F](const NosTag &T) { return T.Field == F; }),
             Tags.end());
}

void AbstractValue::dropNosTagsForBase(uint32_t Base) {
  Tags.erase(
      std::remove_if(Tags.begin(), Tags.end(),
                     [Base](const NosTag &T) { return T.BaseLocal == Base; }),
      Tags.end());
}

const NosTag *AbstractValue::findNosTag(uint32_t Base, FieldId F) const {
  NosTag Key{Base, F, false};
  auto It = std::lower_bound(Tags.begin(), Tags.end(), Key);
  if (It != Tags.end() && It->BaseLocal == Base && It->Field == F)
    return &*It;
  return nullptr;
}

bool AbstractValue::mergeAnnotations(const AbstractValue &Incoming) {
  bool Changed = false;
  if (SrcLocal != Incoming.SrcLocal && SrcLocal != InvalidId) {
    SrcLocal = InvalidId;
    Changed = true;
  }
  if (!Tags.empty()) {
    // Intersect tag sets; a tag survives only if present in both values,
    // and its strength is the weaker of the two.
    std::vector<NosTag> Merged;
    Merged.reserve(Tags.size());
    for (const NosTag &T : Tags)
      if (const NosTag *Other = Incoming.findNosTag(T.BaseLocal, T.Field))
        Merged.push_back(NosTag{T.BaseLocal, T.Field, T.IsEq && Other->IsEq});
    if (Merged != Tags) {
      Tags = std::move(Merged);
      Changed = true;
    }
  }
  return Changed;
}
