//===- analysis/RefUniverse.h - Abstract reference values ------*- C++ -*-===//
///
/// \file
/// The abstract reference value space of Section 2.1. For a method under
/// analysis we create:
///
///   - GlobalRef: all objects allocated outside the method and not passed
///     as arguments (RefId 0);
///   - R_arg(i): the initial value of each reference-typed argument,
///     non-unique and (except a constructor's `this`) non-thread-local;
///   - R_id/A and R_id/B per allocation site: the object most recently
///     allocated at the site, and the summary of all earlier ones. Only
///     R_id/A (and a constructor's `this`) satisfy unique(), enabling
///     strong update (Section 2.4).
///
/// The TwoNamesPerSite knob exists for the ablation bench: with it off, a
/// site gets a single non-unique summary name, reproducing the imprecision
/// the paper's W1/W2 example motivates against.
///
//===----------------------------------------------------------------------===//

#ifndef SATB_ANALYSIS_REFUNIVERSE_H
#define SATB_ANALYSIS_REFUNIVERSE_H

#include "bytecode/Program.h"

#include <vector>

namespace satb {

using RefId = uint32_t;

/// One allocation site in the (post-inlining) method body.
struct AllocSite {
  uint32_t InstrIdx = 0;
  Opcode Kind = Opcode::NewInstance; ///< NewInstance/NewRefArray/NewIntArray
  ClassId Class = InvalidId;         ///< for NewInstance
};

/// The finite set of abstract references for one method, fixed before the
/// fixpoint iteration starts (the lattice must be finite, Section 2.4).
class RefUniverse {
public:
  /// Scans \p M (after inlining) for allocation sites and reference
  /// arguments.
  RefUniverse(const Method &M, bool TwoNamesPerSite);

  static constexpr RefId GlobalRef = 0;

  uint32_t numRefs() const { return NumRefs; }
  uint32_t numSites() const { return static_cast<uint32_t>(Sites.size()); }
  const AllocSite &site(uint32_t SiteIdx) const { return Sites[SiteIdx]; }

  /// \returns the R_arg(i) id for argument \p ArgIdx, or InvalidId for an
  /// int-typed argument.
  RefId argRef(uint32_t ArgIdx) const {
    assert(ArgIdx < ArgRefs.size() && "argument index out of range");
    return ArgRefs[ArgIdx];
  }

  /// \returns the allocation-site index of the allocation instruction at
  /// \p InstrIdx, or InvalidId if that instruction is not an allocation.
  uint32_t siteOfInstr(uint32_t InstrIdx) const {
    assert(InstrIdx < InstrToSite.size() && "instruction out of range");
    return InstrToSite[InstrIdx];
  }

  /// R_id/A: the most recently allocated object of site \p SiteIdx.
  RefId siteA(uint32_t SiteIdx) const {
    assert(SiteIdx < Sites.size() && "site index out of range");
    return FirstSiteRef + SiteIdx * (TwoNames ? 2 : 1);
  }

  /// R_id/B: the summary of previously allocated objects of the site. With
  /// TwoNamesPerSite off this is the same id as siteA.
  RefId siteB(uint32_t SiteIdx) const {
    assert(SiteIdx < Sites.size() && "site index out of range");
    return siteA(SiteIdx) + (TwoNames ? 1 : 0);
  }

  /// unique(r): r denotes a single concrete reference (Section 2.1). True
  /// for R_id/A names; additionally true for a constructor's R_arg(0),
  /// which callers handle via uniqueInContext.
  bool isSiteA(RefId R) const {
    if (!TwoNames || R < FirstSiteRef)
      return false;
    return (R - FirstSiteRef) % 2 == 0;
  }

  /// \returns the unique() predicate for \p R when analyzing a method where
  /// \p IsConstructor indicates a constructor body.
  bool uniqueInContext(RefId R, bool IsConstructor) const {
    if (isSiteA(R))
      return true;
    return IsConstructor && !ArgRefs.empty() && R == ArgRefs[0] &&
           R != InvalidId;
  }

  /// \returns the site index of an allocation-site ref, or InvalidId for
  /// GlobalRef/argument refs.
  uint32_t siteOfRef(RefId R) const {
    if (R < FirstSiteRef)
      return InvalidId;
    return (R - FirstSiteRef) / (TwoNames ? 2 : 1);
  }

  /// \returns true if \p R can denote a reference array (and so has
  /// f_elems contents and a null range).
  bool isRefArrayRef(RefId R) const;
  /// \returns true if \p R can denote any array (for Len tracking).
  bool isArrayRef(RefId R) const;

  /// \returns a debug name like "Global", "Arg0", "Site3/A".
  std::string refName(RefId R) const;

private:
  bool TwoNames;
  uint32_t NumRefs = 0;
  uint32_t FirstSiteRef = 0;
  std::vector<RefId> ArgRefs;        ///< per method argument
  std::vector<AllocSite> Sites;
  std::vector<uint32_t> InstrToSite; ///< per instruction, or InvalidId
};

} // namespace satb

#endif // SATB_ANALYSIS_REFUNIVERSE_H
