//===- analysis/Rearrange.cpp ---------------------------------------------===//

#include "analysis/Rearrange.h"

#include <algorithm>

using namespace satb;

namespace {

/// One matched rearrangement region in the original instruction stream:
/// either a move-down delete loop or a straight-line two-element swap.
struct MatchedLoop {
  enum class Kind { MoveDown, Swap };
  Kind K = Kind::MoveDown;
  uint32_t PreheaderIdx; ///< first instruction of the region
  uint32_t StoreIdx;     ///< the (first) protocol aastore
  uint32_t StoreIdx2 = InvalidId; ///< the swap's second aastore
  uint32_t ExitIdx;      ///< first instruction after the region
  int32_t ArrLocal;
  /// MoveDown: the constant index the loop genuinely overwrites.
  /// Swap: the *int local* holding the first-overwritten index (logged
  /// dynamically; the second element stays in the array throughout).
  int32_t DroppedIndex;
};

/// Matches the canonical 18-instruction move-down delete loop starting at
/// \p I (see Rearrange.h).
bool matchAt(const std::vector<Instruction> &Code, uint32_t I,
             MatchedLoop &Out) {
  if (I + 18 > Code.size())
    return false;
  auto Is = [&](uint32_t Off, Opcode Op) { return Code[I + Off].Op == Op; };

  if (!Is(0, Opcode::IConst) || Code[I].A < 0)
    return false;
  if (!Is(1, Opcode::IStore))
    return false;
  int32_t J = Code[I + 1].A;
  // Loop head: j < arr.length - 1
  if (!Is(2, Opcode::ILoad) || Code[I + 2].A != J)
    return false;
  if (!Is(3, Opcode::ALoad))
    return false;
  int32_t Arr = Code[I + 3].A;
  if (!Is(4, Opcode::ArrayLength))
    return false;
  if (!Is(5, Opcode::IConst) || Code[I + 5].A != 1)
    return false;
  if (!Is(6, Opcode::ISub))
    return false;
  if (!Is(7, Opcode::IfICmpGe) ||
      Code[I + 7].A != static_cast<int32_t>(I + 18))
    return false;
  // Body: arr[j] = arr[j+1]
  if (!Is(8, Opcode::ALoad) || Code[I + 8].A != Arr)
    return false;
  if (!Is(9, Opcode::ILoad) || Code[I + 9].A != J)
    return false;
  if (!Is(10, Opcode::ALoad) || Code[I + 10].A != Arr)
    return false;
  if (!Is(11, Opcode::ILoad) || Code[I + 11].A != J)
    return false;
  if (!Is(12, Opcode::IConst) || Code[I + 12].A != 1)
    return false;
  if (!Is(13, Opcode::IAdd) || !Is(14, Opcode::AALoad) ||
      !Is(15, Opcode::AAStore))
    return false;
  if (!Is(16, Opcode::IInc) || Code[I + 16].A != J || Code[I + 16].B != 1)
    return false;
  if (!Is(17, Opcode::Goto) ||
      Code[I + 17].A != static_cast<int32_t>(I + 2))
    return false;
  // The array local must not be reassigned inside the loop (it is not —
  // the matched body contains no astore — but a paranoid check documents
  // the requirement).
  Out.PreheaderIdx = I;
  Out.StoreIdx = I + 15;
  Out.ExitIdx = I + 18;
  Out.ArrLocal = Arr;
  Out.DroppedIndex = Code[I].A;
  return true;
}

/// Matches the straight-line two-element swap of db's sort idiom
/// (20 instructions): x = arr[i]; y = arr[i+1]; arr[i] = y; arr[i+1] = x.
/// Logging arr[i] at enter makes the region safe at every instant: y is
/// always present in the array (it reaches arr[i] before arr[i+1] is
/// overwritten), and x is covered by the enter log.
bool matchSwapAt(const std::vector<Instruction> &Code, uint32_t I,
                 MatchedLoop &Out) {
  if (I + 20 > Code.size())
    return false;
  auto Is = [&](uint32_t Off, Opcode Op) { return Code[I + Off].Op == Op; };
  auto OpA = [&](uint32_t Off) { return Code[I + Off].A; };

  // x = arr[i]
  if (!Is(0, Opcode::ALoad) || !Is(1, Opcode::ILoad) || !Is(2, Opcode::AALoad) ||
      !Is(3, Opcode::AStore))
    return false;
  int32_t Arr = OpA(0), Idx = OpA(1), X = OpA(3);
  // y = arr[i+1]
  if (!Is(4, Opcode::ALoad) || OpA(4) != Arr || !Is(5, Opcode::ILoad) ||
      OpA(5) != Idx || !Is(6, Opcode::IConst) || OpA(6) != 1 ||
      !Is(7, Opcode::IAdd) || !Is(8, Opcode::AALoad) || !Is(9, Opcode::AStore))
    return false;
  int32_t Y = OpA(9);
  if (X == Y || X == Arr || Y == Arr)
    return false;
  // arr[i] = y
  if (!Is(10, Opcode::ALoad) || OpA(10) != Arr || !Is(11, Opcode::ILoad) ||
      OpA(11) != Idx || !Is(12, Opcode::ALoad) || OpA(12) != Y ||
      !Is(13, Opcode::AAStore))
    return false;
  // arr[i+1] = x
  if (!Is(14, Opcode::ALoad) || OpA(14) != Arr || !Is(15, Opcode::ILoad) ||
      OpA(15) != Idx || !Is(16, Opcode::IConst) || OpA(16) != 1 ||
      !Is(17, Opcode::IAdd) || !Is(18, Opcode::ALoad) || OpA(18) != X ||
      !Is(19, Opcode::AAStore))
    return false;

  Out.K = MatchedLoop::Kind::Swap;
  Out.PreheaderIdx = I;
  Out.StoreIdx = I + 13;
  Out.StoreIdx2 = I + 19;
  Out.ExitIdx = I + 20;
  Out.ArrLocal = Arr;
  Out.DroppedIndex = Idx; // an int local in the Swap kind
  return true;
}

} // namespace

RearrangeResult satb::recognizeMoveDownLoops(const Method &M) {
  RearrangeResult R;
  const std::vector<Instruction> &Code = M.Instructions;

  std::vector<MatchedLoop> Loops;
  for (uint32_t I = 0; I + 18 <= Code.size();) {
    MatchedLoop L;
    if (matchAt(Code, I, L) || matchSwapAt(Code, I, L)) {
      Loops.push_back(L);
      I = L.ExitIdx;
      continue;
    }
    ++I;
  }

  if (Loops.empty()) {
    R.Transformed = M;
    R.ProtocolStores.assign(Code.size(), false);
    return R;
  }

  // Insertion points: a RearrangeEnter at each preheader, a RearrangeExit
  // at each exit. Branch targets land *on* an instruction inserted at
  // their position (so exit branches execute the RearrangeExit, and jumps
  // to the preheader execute the RearrangeEnter).
  std::vector<uint32_t> InsertPos;
  for (const MatchedLoop &L : Loops) {
    InsertPos.push_back(L.PreheaderIdx);
    InsertPos.push_back(L.ExitIdx);
  }
  std::sort(InsertPos.begin(), InsertPos.end());
  auto ShiftTarget = [&InsertPos](uint32_t Old) {
    return Old + static_cast<uint32_t>(
                     std::lower_bound(InsertPos.begin(), InsertPos.end(),
                                      Old) -
                     InsertPos.begin());
  };
  // New position of the instruction originally at Old (inserts at the same
  // position go before it).
  auto ShiftInstr = [&InsertPos](uint32_t Old) {
    return Old + static_cast<uint32_t>(
                     std::upper_bound(InsertPos.begin(), InsertPos.end(),
                                      Old) -
                     InsertPos.begin());
  };

  Method Out = M;
  Out.Instructions.clear();
  Out.Instructions.reserve(Code.size() + InsertPos.size());
  R.ProtocolStores.assign(Code.size() + InsertPos.size(), false);

  std::vector<std::pair<uint32_t, uint32_t>> PendingInserts; // (pos, loop#)
  for (size_t LI = 0; LI != Loops.size(); ++LI) {
    PendingInserts.emplace_back(Loops[LI].PreheaderIdx,
                                static_cast<uint32_t>(LI) * 2);
    PendingInserts.emplace_back(Loops[LI].ExitIdx,
                                static_cast<uint32_t>(LI) * 2 + 1);
  }
  std::sort(PendingInserts.begin(), PendingInserts.end());

  size_t InsIt = 0;
  for (uint32_t I = 0; I <= Code.size(); ++I) {
    while (InsIt != PendingInserts.size() && PendingInserts[InsIt].first == I) {
      uint32_t Tag = PendingInserts[InsIt].second;
      const MatchedLoop &L = Loops[Tag / 2];
      if (Tag % 2 == 0)
        Out.Instructions.push_back(
            Instruction{L.K == MatchedLoop::Kind::MoveDown
                            ? Opcode::RearrangeEnter
                            : Opcode::RearrangeEnterDyn,
                        L.ArrLocal, L.DroppedIndex});
      else
        Out.Instructions.push_back(
            Instruction{Opcode::RearrangeExit, L.ArrLocal, 0});
      ++InsIt;
    }
    if (I == Code.size())
      break;
    Instruction Ins = Code[I];
    if (isBranch(Ins.Op))
      Ins.A = static_cast<int32_t>(ShiftTarget(static_cast<uint32_t>(Ins.A)));
    Out.Instructions.push_back(Ins);
  }

  for (const MatchedLoop &L : Loops) {
    R.ProtocolStores[ShiftInstr(L.StoreIdx)] = true;
    if (L.StoreIdx2 != InvalidId)
      R.ProtocolStores[ShiftInstr(L.StoreIdx2)] = true;
  }

  R.Transformed = std::move(Out);
  R.LoopsTransformed = static_cast<uint32_t>(Loops.size());
  return R;
}
