//===- tools/dispatch_profile.cpp - Dynamic opcode-pair profiler ----------===//
///
/// \file
/// The data behind the superinstruction set (DESIGN.md
/// "Superinstructions"): runs every Table 1 workload on the *unfused*
/// fast engine with pair profiling enabled (FastInterp::
/// enablePairProfile, a separate dispatch-loop instantiation — the
/// production loop carries no profiling cost) and dumps the dynamic
/// opcode-pair frequencies, aggregated across the suite and sorted by
/// count. Each row is marked [fused] when fusedOp() selects the pair,
/// so the dump doubles as an audit: the chosen set should cover the top
/// of this list, and any hot unfused pair is a candidate for the next
/// revision.
///
/// Usage: dispatch_profile [scale] [--threshold=PCT]
///
/// [scale] defaults to 2000, or SATB_BENCH_SCALE. --threshold=PCT (or
/// SATB_PROFILE_THRESHOLD; the flag wins) suppresses rows whose share of
/// dynamic adjacent pairs is below PCT — the tail is summarized instead
/// of printed, with its aggregate coverage, so the cut is auditable.
///
/// A bulk-store program rides along with the Table 1 suite so the
/// ArrayFill_*/ArrayCopy_* opcodes show up in the dump, and their
/// dynamic share is summarized separately. Bulk opcodes are *excluded
/// from pair fusion by design* (fusedOp never selects a pair containing
/// one): a single bulk dispatch already amortizes the dispatch cost over
/// the whole range, so fusing it with a neighbor buys nothing — the
/// summary line keeps that exclusion auditable.
///
/// CI's bench-smoke job uploads this dump as an artifact.
///
//===----------------------------------------------------------------------===//

#include "bytecode/MethodBuilder.h"
#include "interp/FastInterp.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace satb;

namespace {

/// True for the bulk-store opcode block (every ArrayFill_*/ArrayCopy_*
/// variant). These are base ops below the fused block and fusedOp never
/// pairs them.
bool isBulkOp(FastOp Op) {
  return Op >= FastOp::ArrayFill_Elided && Op <= FastOp::ArrayCopy_Spec;
}

/// A bulk-store rider workload: per transaction, one elided fill of a
/// fresh 8-slot array and one elided copy into a second fresh array —
/// enough to put the bulk opcodes into the pair stream.
Workload makeBulkRider() {
  Workload W;
  W.Name = "bulk";
  W.Description = "bulk-store rider for dispatch coverage";
  W.P = std::make_shared<Program>();
  MethodBuilder B(*W.P, "main", {JType::Int}, JType::Int);
  Local T = B.newLocal(JType::Int);
  Local Src = B.newLocal(JType::Ref), Dst = B.newLocal(JType::Ref);
  Label Head = B.newLabel(), Done = B.newLabel();
  B.iconst(0).istore(T);
  B.bind(Head).iload(T).iload(B.arg(0)).ifICmpGe(Done);
  B.iconst(8).newRefArray().astore(Src);
  B.aload(Src).aload(Src).iconst(0).iconst(8).arrayfill();
  B.iconst(8).newRefArray().astore(Dst);
  B.aload(Src).iconst(0).aload(Dst).iconst(0).iconst(8).arraycopy();
  B.iinc(T, 1).jump(Head);
  B.bind(Done).iload(T).ireturn();
  W.Entry = B.finish();
  return W;
}

} // namespace

int main(int Argc, char **Argv) {
  int64_t Scale = 2000;
  if (const char *Env = std::getenv("SATB_BENCH_SCALE"))
    Scale = std::atoll(Env);
  double ThresholdPct = 0.0; // print everything by default
  if (const char *Env = std::getenv("SATB_PROFILE_THRESHOLD"))
    ThresholdPct = std::atof(Env);
  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--threshold=", 12) == 0) {
      ThresholdPct = std::atof(Arg + 12);
    } else if (std::strcmp(Arg, "--threshold") == 0 && I + 1 != Argc) {
      ThresholdPct = std::atof(Argv[++I]);
    } else if (Arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: dispatch_profile [scale] [--threshold=PCT]\n");
      return 2;
    } else {
      Scale = std::atoll(Arg);
    }
  }

  CompilerOptions Opts;
  std::vector<uint64_t> Total(static_cast<size_t>(kNumFastOps) * kNumFastOps,
                              0);
  uint64_t Steps = 0;
  std::vector<Workload> Suite = allWorkloads();
  Suite.push_back(makeBulkRider());
  for (const Workload &W : Suite) {
    CompiledProgram CP = compileProgram(*W.P, Opts);
    TranslateOptions TO;
    TO.Fuse = false; // profile the base stream: pairs are fusion *input*
    FastProgram FP = translateProgram(*W.P, CP, TO);
    Heap H(*W.P);
    FastInterp I(FP, CP, H);
    SatbMarker M(H);
    I.attachSatb(&M);
    I.enablePairProfile();
    if (I.run(W.Entry, {Scale}) != RunStatus::Finished) {
      std::fprintf(stderr, "dispatch_profile: %s trapped: %s\n",
                   W.Name.c_str(), trapName(I.trap()));
      return 1;
    }
    Steps += I.stepsExecuted();
    const std::vector<uint64_t> &P = I.pairProfile();
    for (size_t K = 0; K != P.size(); ++K)
      Total[K] += P[K];
  }

  struct Row {
    uint64_t Count;
    uint16_t First, Second;
  };
  std::vector<Row> Rows;
  uint64_t PairTotal = 0;
  for (uint16_t F = 0; F != kNumFastOps; ++F)
    for (uint16_t S = 0; S != kNumFastOps; ++S) {
      uint64_t C = Total[static_cast<size_t>(F) * kNumFastOps + S];
      if (C == 0)
        continue;
      Rows.push_back({C, F, S});
      PairTotal += C;
    }
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Count > B.Count; });

  std::printf("# dynamic opcode-pair profile, Table 1 suite, scale %lld\n",
              static_cast<long long>(Scale));
  std::printf("# steps %llu, adjacent pairs %llu, distinct pairs %zu\n",
              static_cast<unsigned long long>(Steps),
              static_cast<unsigned long long>(PairTotal), Rows.size());
  if (ThresholdPct > 0.0)
    std::printf("# threshold: hiding pairs below %.3f%% of dynamic total\n",
                ThresholdPct);
  std::printf("%-12s %7s %6s  %s\n", "count", "pct", "cum", "pair");
  double Cum = 0.0;
  uint64_t FusedCovered = 0;
  uint64_t Excluded = 0, ExcludedFused = 0;
  size_t ExcludedRows = 0;
  for (const Row &R : Rows) {
    double Pct = 100.0 * R.Count / PairTotal;
    Cum += Pct;
    bool Fused = fusedOp(static_cast<FastOp>(R.First),
                         static_cast<FastOp>(R.Second))
                     .has_value();
    if (Fused)
      FusedCovered += R.Count;
    if (Pct < ThresholdPct) {
      // Rows arrive sorted, so everything from here down is tail; keep
      // accumulating instead of printing.
      Excluded += R.Count;
      ExcludedFused += Fused ? R.Count : 0;
      ++ExcludedRows;
      continue;
    }
    std::printf("%-12llu %6.2f%% %5.1f%%  %s+%s%s\n",
                static_cast<unsigned long long>(R.Count), Pct, Cum,
                fastOpName(static_cast<FastOp>(R.First)),
                fastOpName(static_cast<FastOp>(R.Second)),
                Fused ? "  [fused]" : "");
  }
  if (ExcludedRows)
    std::printf("# threshold excluded %zu pairs covering %.2f%% of dynamic "
                "adjacent pairs (%.2f%% of them already fused)\n",
                ExcludedRows, PairTotal ? 100.0 * Excluded / PairTotal : 0.0,
                Excluded ? 100.0 * ExcludedFused / Excluded : 0.0);
  std::printf("# fused pairs cover %.1f%% of dynamic adjacent pairs\n",
              PairTotal ? 100.0 * FusedCovered / PairTotal : 0.0);
  // Bulk-store coverage: executions counted as the pair's first element
  // (each executed instruction heads exactly one adjacent pair).
  uint64_t BulkExecs = 0, BulkPairs = 0;
  for (const Row &R : Rows) {
    bool B1 = isBulkOp(static_cast<FastOp>(R.First));
    bool B2 = isBulkOp(static_cast<FastOp>(R.Second));
    if (B1)
      BulkExecs += R.Count;
    if (B1 || B2)
      BulkPairs += R.Count;
  }
  std::printf("# bulk stores: %llu executions, %.2f%% of adjacent pairs touch "
              "a bulk opcode;\n# bulk opcodes never fuse (by design: one bulk "
              "dispatch covers the whole range)\n",
              static_cast<unsigned long long>(BulkExecs),
              PairTotal ? 100.0 * BulkPairs / PairTotal : 0.0);
  return 0;
}
