#!/usr/bin/env python3
"""Validate bench JSON output, compare schemas, and gate regressions.

The bench binaries append one JSON document per run to the file named by
SATB_BENCH_JSON (bench/BenchUtil.h JsonBench). Each document looks like

    {"bench": "<name>", "scale": <int>, "rows": [{...}, ...]}

This checker has three layers:

 1. Well-formedness: every input file must be non-empty, every non-blank
    line must parse as a JSON object with a string "bench", an integer
    "scale", and a non-empty "rows" list of non-empty objects. Rows may
    nest objects one level deep (BenchUtil.h beginObject — histogram
    percentile blocks); nested fields are flattened to dotted keys
    ("stw.p99_us") for all schema purposes. Row 0 defines the document's
    key set; later rows must carry either the same keys or a subset of
    them (summary rows such as a trailing geomean legitimately omit
    per-workload columns, but may never invent keys the data rows lack).
    Empty nested objects and deeper nesting are malformed.
 2. Baseline schema comparison (--baseline FILE, repeatable): the
    committed BENCH_*.json files define, per bench name, the expected
    row-0 key set. A fresh document for a known bench must carry exactly
    the same row-0 keys — a renamed, dropped, or added column fails the
    gate until the committed baseline is regenerated alongside it.
 3. Regression gate (--gate BENCH:KEY[:SELKEY=SELVAL], repeatable): for
    each gated bench, the metric KEY is read from the selected row (the
    row whose SELKEY equals SELVAL, or the last row carrying KEY when no
    selector is given — the summary-row convention) in both the fresh
    document and the baseline. Metrics are higher-is-better by default:
    the check fails when fresh < baseline * (1 - --tolerance). Prefixing
    KEY with '-' (e.g. --gate tiered_exec:-deopt_rate) flips the gate to
    lower-is-better: the check fails when fresh > baseline *
    (1 + --tolerance). The '-' is gate syntax, not part of the JSON key.
    A dotted KEY (e.g. --gate server_latency:-stw.p99_us) gates a field
    inside a nested object.
    Setting the SATB_BENCH_GATE_SKIP environment variable (any non-empty
    value) reports the comparison but never fails it — the escape hatch
    for 1-CPU containers whose timings are not comparable to the
    baseline host's.

--require NAME (repeatable) additionally fails if no input document came
from bench NAME; CI uses it so an exiting-early bench cannot silently
upload an empty artifact.

Exit status 0 iff every check passed. Stdlib only.
"""

import argparse
import json
import os
import sys


def load_docs(path, errors):
    """Parses one bench JSON file (one document per line)."""
    docs = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"{path}: unreadable: {e}")
        return docs
    if not text.strip():
        errors.append(f"{path}: empty (bench produced no JSON)")
        return docs
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path}:{lineno}: malformed JSON: {e}")
            continue
        docs.append((f"{path}:{lineno}", doc))
    return docs


def flat_keys(row, prefix=""):
    """The row's key set with nested objects flattened to dotted keys
    (BenchUtil.h beginObject/endObject emits histogram percentile blocks
    as one-level sub-objects: {"stw": {"p99_us": ...}} contributes
    "stw.p99_us"). An empty nested object contributes nothing and is
    reported separately by check_doc. Returns None on nesting deeper
    than one level — the writer cannot produce it, so it marks a
    hand-edited or corrupted document."""
    keys = set()
    for k, v in row.items():
        if isinstance(v, dict):
            if prefix:
                return None
            sub = flat_keys(v, prefix=f"{k}.")
            if sub is None:
                return None
            keys |= sub
            if not v:
                keys.add(f"{k}.")  # sentinel so schema comparison flags it
        else:
            keys.add(prefix + k)
    return keys


def check_doc(where, doc, errors):
    """Well-formedness of one document; returns (bench, row0_keys, rows).
    Row keys are the flattened (dotted) key sets."""
    if not isinstance(doc, dict):
        errors.append(f"{where}: document is not an object")
        return None
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append(f"{where}: missing/invalid 'bench' name")
        return None
    if not isinstance(doc.get("scale"), int):
        errors.append(f"{where}: [{bench}] missing/invalid integer 'scale'")
        return None
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append(f"{where}: [{bench}] 'rows' missing or empty")
        return None
    keys = None
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not row:
            errors.append(f"{where}: [{bench}] row {i} is not a non-empty object")
            return None
        if any(isinstance(v, dict) and not v for v in row.values()):
            errors.append(f"{where}: [{bench}] row {i} has an empty nested object")
            return None
        row_keys = flat_keys(row)
        if row_keys is None:
            errors.append(
                f"{where}: [{bench}] row {i} nests objects deeper than one level"
            )
            return None
        if keys is None:
            keys = frozenset(row_keys)
        elif not frozenset(row_keys) <= keys:
            extra = sorted(frozenset(row_keys) - keys)
            errors.append(
                f"{where}: [{bench}] row {i} carries keys {extra} absent "
                f"from row 0 (summary rows may only drop columns)"
            )
            return None
    return bench, keys, rows


def parse_gate(spec, errors):
    """Parses BENCH:[-]KEY[:SELKEY=SELVAL] into (bench, key, sel, lower)
    or None; a '-' prefix on KEY marks the metric lower-is-better."""
    parts = spec.split(":")
    if len(parts) not in (2, 3) or not parts[0] or not parts[1]:
        errors.append(f"--gate {spec!r}: expected BENCH:KEY[:SELKEY=SELVAL]")
        return None
    key, lower = parts[1], False
    if key.startswith("-"):
        key, lower = key[1:], True
        if not key:
            errors.append(f"--gate {spec!r}: '-' prefix without a key")
            return None
    sel = None
    if len(parts) == 3:
        if "=" not in parts[2]:
            errors.append(f"--gate {spec!r}: selector must be SELKEY=SELVAL")
            return None
        sel = tuple(parts[2].split("=", 1))
    return parts[0], key, sel, lower


def row_value(row, key):
    """Reads KEY from a row; a dotted key ("stw.p99_us") descends into the
    flattened nested object. Returns a sentinel (None) when absent."""
    if "." in key:
        outer, inner = key.split(".", 1)
        sub = row.get(outer)
        return sub.get(inner) if isinstance(sub, dict) else None
    value = row.get(key)
    return None if isinstance(value, dict) else value


def gated_value(rows, key, sel):
    """The gated metric from a row list: the selected row's value, or the
    last row carrying the key (the summary-row convention). Dotted keys
    gate fields inside nested objects."""
    picked = None
    for row in rows:
        if sel is not None:
            if str(row.get(sel[0])) == sel[1] and row_value(row, key) is not None:
                picked = row
        elif row_value(row, key) is not None:
            picked = row
    if picked is None:
        return None
    value = row_value(picked, key)
    return value if isinstance(value, (int, float)) else None


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="fresh bench JSON files to check")
    ap.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="FILE",
        help="committed BENCH_*.json whose per-bench row-key sets are the "
        "expected schema and whose metrics anchor the regression gate "
        "(repeatable)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BENCH",
        help="fail unless a document from this bench is present (repeatable)",
    )
    ap.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="BENCH:KEY[:SELKEY=SELVAL]",
        help="fail when this bench's metric regresses more than --tolerance "
        "below the baseline value (higher is better; repeatable)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional regression for --gate metrics "
        "(default 0.25 = 25%%)",
    )
    args = ap.parse_args(argv)

    errors = []
    gates = [g for g in (parse_gate(s, errors) for s in args.gate) if g]

    # Baselines must themselves be well-formed; a bench appearing in two
    # baseline files with different schemas is a repo inconsistency.
    expected = {}
    for path in args.baseline:
        for where, doc in load_docs(path, errors):
            checked = check_doc(where, doc, errors)
            if not checked:
                continue
            bench, keys, rows = checked
            if bench in expected and expected[bench][0] != keys:
                errors.append(
                    f"{where}: [{bench}] baseline schema conflicts with "
                    f"{expected[bench][1]}"
                )
            else:
                expected[bench] = (keys, where, rows)

    seen = {}
    for path in args.files:
        for where, doc in load_docs(path, errors):
            checked = check_doc(where, doc, errors)
            if not checked:
                continue
            bench, keys, rows = checked
            seen[bench] = (keys, rows, where)
            if bench in expected and keys != expected[bench][0]:
                base_keys, base_where, _ = expected[bench]
                errors.append(
                    f"{where}: [{bench}] row keys {sorted(keys)} do not match "
                    f"baseline {base_where} keys {sorted(base_keys)}"
                )

    gate_skip = bool(os.environ.get("SATB_BENCH_GATE_SKIP"))
    for bench, key, sel, lower in gates:
        if bench not in seen:
            errors.append(f"--gate {bench}:{key}: no fresh document for bench")
            continue
        if bench not in expected:
            errors.append(f"--gate {bench}:{key}: no baseline for bench")
            continue
        fresh = gated_value(seen[bench][1], key, sel)
        base = gated_value(expected[bench][2], key, sel)
        where = seen[bench][2]
        if fresh is None or base is None:
            errors.append(
                f"{where}: [{bench}] gated metric '{key}' missing or "
                f"non-numeric in fresh or baseline document"
            )
            continue
        if lower:
            bound = base * (1.0 + args.tolerance)
            failed = fresh > bound
            kind = "ceiling"
        else:
            bound = base * (1.0 - args.tolerance)
            failed = fresh < bound
            kind = "floor"
        verdict = "OK" if not failed else "REGRESSION"
        print(
            f"check_bench_json: gate [{bench}] {key}: fresh {fresh:g} vs "
            f"baseline {base:g} ({kind} {bound:g}): {verdict}"
            + (" (skipped: SATB_BENCH_GATE_SKIP)" if gate_skip else "")
        )
        if failed and not gate_skip:
            cmp = ">" if lower else "<"
            errors.append(
                f"{where}: [{bench}] metric '{key}' regressed: fresh "
                f"{fresh:g} {cmp} baseline {base:g} "
                f"{'+' if lower else '-'} {args.tolerance:.0%}"
            )

    for bench in args.require:
        if bench not in seen:
            errors.append(f"required bench '{bench}' produced no JSON document")

    if errors:
        for e in errors:
            print(f"check_bench_json: {e}", file=sys.stderr)
        return 1
    names = ", ".join(sorted(seen)) or "(none)"
    print(f"check_bench_json: OK — {len(seen)} bench(es): {names}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
