#!/usr/bin/env python3
"""Validate bench JSON output and compare its schema against baselines.

The bench binaries append one JSON document per run to the file named by
SATB_BENCH_JSON (bench/BenchUtil.h JsonBench). Each document looks like

    {"bench": "<name>", "scale": <int>, "rows": [{...}, ...]}

This checker has two layers, both structural (numbers change per host and
per SATB_BENCH_SCALE, so values are never compared):

 1. Well-formedness: every input file must be non-empty, every non-blank
    line must parse as a JSON object with a string "bench", an integer
    "scale", and a non-empty "rows" list of non-empty objects whose key
    sets agree within the document.
 2. Baseline schema comparison (--baseline FILE, repeatable): the
    committed BENCH_*.json files define, per bench name, the expected set
    of row keys. A fresh document for a known bench must carry exactly
    the same row keys — a renamed, dropped, or added column fails the
    gate until the committed baseline is regenerated alongside it.

--require NAME (repeatable) additionally fails if no input document came
from bench NAME; CI uses it so an exiting-early bench cannot silently
upload an empty artifact.

Exit status 0 iff every check passed. Stdlib only.
"""

import argparse
import json
import sys


def load_docs(path, errors):
    """Parses one bench JSON file (one document per line)."""
    docs = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"{path}: unreadable: {e}")
        return docs
    if not text.strip():
        errors.append(f"{path}: empty (bench produced no JSON)")
        return docs
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{path}:{lineno}: malformed JSON: {e}")
            continue
        docs.append((f"{path}:{lineno}", doc))
    return docs


def check_doc(where, doc, errors):
    """Well-formedness of one document; returns (bench, row_keys) or None."""
    if not isinstance(doc, dict):
        errors.append(f"{where}: document is not an object")
        return None
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append(f"{where}: missing/invalid 'bench' name")
        return None
    if not isinstance(doc.get("scale"), int):
        errors.append(f"{where}: [{bench}] missing/invalid integer 'scale'")
        return None
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        errors.append(f"{where}: [{bench}] 'rows' missing or empty")
        return None
    keys = None
    for i, row in enumerate(rows):
        if not isinstance(row, dict) or not row:
            errors.append(f"{where}: [{bench}] row {i} is not a non-empty object")
            return None
        if keys is None:
            keys = frozenset(row)
        elif frozenset(row) != keys:
            errors.append(
                f"{where}: [{bench}] row {i} keys {sorted(row)} differ from "
                f"row 0 keys {sorted(keys)}"
            )
            return None
    return bench, keys


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="fresh bench JSON files to check")
    ap.add_argument(
        "--baseline",
        action="append",
        default=[],
        metavar="FILE",
        help="committed BENCH_*.json whose per-bench row-key sets are the "
        "expected schema (repeatable)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BENCH",
        help="fail unless a document from this bench is present (repeatable)",
    )
    args = ap.parse_args(argv)

    errors = []

    # Baselines must themselves be well-formed; a bench appearing in two
    # baseline files with different schemas is a repo inconsistency.
    expected = {}
    for path in args.baseline:
        for where, doc in load_docs(path, errors):
            checked = check_doc(where, doc, errors)
            if not checked:
                continue
            bench, keys = checked
            if bench in expected and expected[bench][0] != keys:
                errors.append(
                    f"{where}: [{bench}] baseline schema conflicts with "
                    f"{expected[bench][1]}"
                )
            else:
                expected[bench] = (keys, where)

    seen = {}
    for path in args.files:
        for where, doc in load_docs(path, errors):
            checked = check_doc(where, doc, errors)
            if not checked:
                continue
            bench, keys = checked
            seen[bench] = keys
            if bench in expected and keys != expected[bench][0]:
                base_keys, base_where = expected[bench]
                errors.append(
                    f"{where}: [{bench}] row keys {sorted(keys)} do not match "
                    f"baseline {base_where} keys {sorted(base_keys)}"
                )

    for bench in args.require:
        if bench not in seen:
            errors.append(f"required bench '{bench}' produced no JSON document")

    if errors:
        for e in errors:
            print(f"check_bench_json: {e}", file=sys.stderr)
        return 1
    names = ", ".join(sorted(seen)) or "(none)"
    print(f"check_bench_json: OK — {len(seen)} bench(es): {names}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
