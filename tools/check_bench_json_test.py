#!/usr/bin/env python3
"""Unit tests for check_bench_json.py: the summary-row subset rule and
the regression gate (tolerance, selector, and the SATB_BENCH_GATE_SKIP
escape hatch). Run directly or via ctest. Stdlib only."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_json  # noqa: E402


def write_doc(dirname, name, bench, rows, scale=100):
    path = os.path.join(dirname, name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps({"bench": bench, "scale": scale, "rows": rows}))
        f.write("\n")
    return path


class CheckBenchJsonTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.dir = self.tmp.name
        os.environ.pop("SATB_BENCH_GATE_SKIP", None)

    def tearDown(self):
        os.environ.pop("SATB_BENCH_GATE_SKIP", None)
        self.tmp.cleanup()

    def run_main(self, *argv):
        return check_bench_json.main(list(argv))

    def test_summary_row_may_drop_columns(self):
        fresh = write_doc(
            self.dir,
            "fresh.json",
            "b",
            [{"workload": "a", "speedup": 2.0}, {"workload": "geomean"}],
        )
        self.assertEqual(self.run_main(fresh), 0)

    def test_summary_row_may_not_add_columns(self):
        fresh = write_doc(
            self.dir,
            "fresh.json",
            "b",
            [{"workload": "a"}, {"workload": "geomean", "extra": 1}],
        )
        self.assertEqual(self.run_main(fresh), 1)

    def test_schema_compares_row0_keys(self):
        base = write_doc(
            self.dir, "base.json", "b", [{"workload": "a", "speedup": 2.0}]
        )
        drifted = write_doc(
            self.dir, "fresh.json", "b", [{"workload": "a", "renamed": 2.0}]
        )
        self.assertEqual(self.run_main(drifted, "--baseline", base), 1)

    def gate_files(self, fresh_speedup, base_speedup=4.0):
        base = write_doc(
            self.dir,
            "base.json",
            "b",
            [
                {"workload": "a", "speedup": base_speedup + 1},
                {"workload": "geomean", "speedup": base_speedup},
            ],
        )
        fresh = write_doc(
            self.dir,
            "fresh.json",
            "b",
            [
                {"workload": "a", "speedup": fresh_speedup + 1},
                {"workload": "geomean", "speedup": fresh_speedup},
            ],
        )
        return fresh, base

    def test_gate_passes_within_tolerance(self):
        fresh, base = self.gate_files(fresh_speedup=3.5)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:speedup",
                "--tolerance", "0.25",
            ),
            0,
        )

    def test_gate_fails_beyond_tolerance(self):
        fresh, base = self.gate_files(fresh_speedup=2.0)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:speedup",
                "--tolerance", "0.25",
            ),
            1,
        )

    def test_gate_reads_last_row_carrying_key(self):
        # The geomean row (4.0 vs fresh 2.0) must anchor the gate, not the
        # per-workload row (5.0 vs 3.0, also a >25% regression — but the
        # point is the summary row being selected without a selector).
        fresh, base = self.gate_files(fresh_speedup=2.0)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:speedup",
                "--tolerance", "0.6",
            ),
            0,
        )

    def test_gate_selector_picks_row(self):
        base = write_doc(
            self.dir,
            "base.json",
            "b",
            [{"threads": 1, "rate": 10.0}, {"threads": 4, "rate": 40.0}],
        )
        fresh = write_doc(
            self.dir,
            "fresh.json",
            "b",
            [{"threads": 1, "rate": 10.0}, {"threads": 4, "rate": 20.0}],
        )
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:rate:threads=4",
                "--tolerance", "0.25",
            ),
            1,
        )
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:rate:threads=1",
                "--tolerance", "0.25",
            ),
            0,
        )

    def test_gate_env_escape_hatch(self):
        fresh, base = self.gate_files(fresh_speedup=1.0)
        os.environ["SATB_BENCH_GATE_SKIP"] = "1"
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:speedup",
                "--tolerance", "0.25",
            ),
            0,
        )

    def lower_gate_files(self, fresh_rate, base_rate=10.0):
        base = write_doc(
            self.dir, "base.json", "b",
            [{"workload": "a", "deopt_rate": base_rate}],
        )
        fresh = write_doc(
            self.dir, "fresh.json", "b",
            [{"workload": "a", "deopt_rate": fresh_rate}],
        )
        return fresh, base

    def test_lower_gate_passes_within_tolerance(self):
        fresh, base = self.lower_gate_files(fresh_rate=12.0)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:-deopt_rate",
                "--tolerance", "0.25",
            ),
            0,
        )

    def test_lower_gate_fails_beyond_tolerance(self):
        fresh, base = self.lower_gate_files(fresh_rate=20.0)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:-deopt_rate",
                "--tolerance", "0.25",
            ),
            1,
        )

    def test_lower_gate_improvement_passes(self):
        fresh, base = self.lower_gate_files(fresh_rate=0.0)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:-deopt_rate",
                "--tolerance", "0.25",
            ),
            0,
        )

    def test_lower_gate_env_escape_hatch(self):
        fresh, base = self.lower_gate_files(fresh_rate=100.0)
        os.environ["SATB_BENCH_GATE_SKIP"] = "1"
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:-deopt_rate",
                "--tolerance", "0.25",
            ),
            0,
        )

    def test_dash_only_key_rejected(self):
        fresh, base = self.lower_gate_files(fresh_rate=10.0)
        self.assertEqual(
            self.run_main(fresh, "--baseline", base, "--gate", "b:-"), 1
        )

    def test_gate_missing_metric_fails(self):
        base = write_doc(self.dir, "base.json", "b", [{"workload": "a"}])
        fresh = write_doc(self.dir, "fresh.json", "b", [{"workload": "a"}])
        self.assertEqual(
            self.run_main(fresh, "--baseline", base, "--gate", "b:speedup"), 1
        )

    def test_require_missing_bench_fails(self):
        fresh = write_doc(self.dir, "fresh.json", "b", [{"workload": "a"}])
        self.assertEqual(self.run_main(fresh, "--require", "other"), 1)

    # --- Nested (dotted-key) rows: the server_latency histogram blocks ---

    def nested_row(self, p99=5.0, config="satb"):
        return {
            "config": config,
            "requests_per_sec": 1000.0,
            "stw": {"count": 4, "p99_us": p99},
        }

    def test_nested_rows_are_well_formed(self):
        fresh = write_doc(
            self.dir, "fresh.json", "b",
            [self.nested_row(), self.nested_row(config="all")],
        )
        self.assertEqual(self.run_main(fresh), 0)

    def test_nested_schema_drift_fails(self):
        base = write_doc(self.dir, "base.json", "b", [self.nested_row()])
        row = self.nested_row()
        row["stw"] = {"count": 4, "renamed_us": 5.0}
        drifted = write_doc(self.dir, "fresh.json", "b", [row])
        self.assertEqual(self.run_main(drifted, "--baseline", base), 1)

    def test_summary_row_may_drop_nested_block(self):
        row = self.nested_row()
        summary = {"config": "all", "requests_per_sec": 900.0}
        fresh = write_doc(self.dir, "fresh.json", "b", [row, summary])
        self.assertEqual(self.run_main(fresh), 0)

    def test_summary_row_may_not_add_nested_keys(self):
        row = self.nested_row()
        summary = self.nested_row(config="all")
        summary["stw"]["extra_us"] = 1.0
        fresh = write_doc(self.dir, "fresh.json", "b", [row, summary])
        self.assertEqual(self.run_main(fresh), 1)

    def test_empty_nested_object_rejected(self):
        row = self.nested_row()
        row["stw"] = {}
        fresh = write_doc(self.dir, "fresh.json", "b", [row])
        self.assertEqual(self.run_main(fresh), 1)

    def test_deep_nesting_rejected(self):
        row = self.nested_row()
        row["stw"] = {"inner": {"p99_us": 5.0}}
        fresh = write_doc(self.dir, "fresh.json", "b", [row])
        self.assertEqual(self.run_main(fresh), 1)

    def test_dotted_gate_reads_nested_metric(self):
        base = write_doc(
            self.dir, "base.json", "b",
            [self.nested_row(p99=10.0), self.nested_row(p99=10.0, config="all")],
        )
        fresh = write_doc(
            self.dir, "fresh.json", "b",
            [self.nested_row(p99=11.0), self.nested_row(p99=11.0, config="all")],
        )
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base, "--gate", "b:-stw.p99_us",
                "--tolerance", "0.25",
            ),
            0,
        )
        worse = write_doc(
            self.dir, "worse.json", "b",
            [self.nested_row(p99=20.0), self.nested_row(p99=20.0, config="all")],
        )
        self.assertEqual(
            self.run_main(
                worse, "--baseline", base, "--gate", "b:-stw.p99_us",
                "--tolerance", "0.25",
            ),
            1,
        )

    def test_dotted_gate_with_selector(self):
        rows = [self.nested_row(p99=4.0), self.nested_row(p99=40.0, config="all")]
        base = write_doc(self.dir, "base.json", "b", rows)
        fresh = write_doc(self.dir, "fresh.json", "b", rows)
        self.assertEqual(
            self.run_main(
                fresh, "--baseline", base,
                "--gate", "b:-stw.p99_us:config=satb",
            ),
            0,
        )

    def test_dotted_gate_missing_inner_key_fails(self):
        fresh = write_doc(self.dir, "fresh.json", "b", [self.nested_row()])
        base = write_doc(self.dir, "base.json", "b", [self.nested_row()])
        self.assertEqual(
            self.run_main(fresh, "--baseline", base, "--gate", "b:stw.absent"),
            1,
        )

    def test_whole_object_is_not_a_gateable_metric(self):
        fresh = write_doc(self.dir, "fresh.json", "b", [self.nested_row()])
        base = write_doc(self.dir, "base.json", "b", [self.nested_row()])
        self.assertEqual(
            self.run_main(fresh, "--baseline", base, "--gate", "b:stw"), 1
        )


if __name__ == "__main__":
    unittest.main()
